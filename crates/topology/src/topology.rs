//! The machine graph: nodes, cores, links, and all-pairs shortest-path
//! routing between NUMA nodes.

use crate::spec::{CoreSpec, Link, NodeSpec};
use crate::{CoreId, CostModel, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Errors detected while validating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The machine has no NUMA nodes.
    NoNodes,
    /// The machine has no cores.
    NoCores,
    /// A core references a node index that does not exist.
    CoreOnMissingNode(CoreId, NodeId),
    /// A link endpoint references a node index that does not exist.
    LinkToMissingNode(LinkId, NodeId),
    /// The node graph is disconnected: no route between the two nodes.
    Disconnected(NodeId, NodeId),
    /// The cost model failed validation.
    BadCostModel(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoNodes => write!(f, "topology has no NUMA nodes"),
            TopologyError::NoCores => write!(f, "topology has no cores"),
            TopologyError::CoreOnMissingNode(c, n) => {
                write!(f, "{c} placed on missing {n}")
            }
            TopologyError::LinkToMissingNode(l, n) => {
                write!(f, "{l} attached to missing {n}")
            }
            TopologyError::Disconnected(a, b) => {
                write!(f, "no interconnect route between {a} and {b}")
            }
            TopologyError::BadCostModel(msg) => write!(f, "bad cost model: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A complete machine description plus precomputed routes.
///
/// Build one with [`Topology::new`] or a preset from [`crate::presets`],
/// then treat it as immutable: the kernel, VM and machine layers all borrow
/// it read-only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    cores: Vec<CoreSpec>,
    links: Vec<Link>,
    cost: CostModel,
    /// `routes[src][dst]` = ordered link ids along a shortest path.
    routes: Vec<Vec<Vec<LinkId>>>,
    /// `hops[src][dst]` = number of links on that path.
    hops: Vec<Vec<u32>>,
    /// Cores attached to each node (indexed by node id) — precomputed so
    /// per-access cache-share math never rescans the core list.
    cores_per_node: Vec<u32>,
}

impl Topology {
    /// Build and validate a topology; routing tables are computed by BFS
    /// with deterministic tie-breaking (lowest link id wins).
    pub fn new(
        nodes: Vec<NodeSpec>,
        cores: Vec<CoreSpec>,
        links: Vec<Link>,
        cost: CostModel,
    ) -> Result<Self, TopologyError> {
        if nodes.is_empty() {
            return Err(TopologyError::NoNodes);
        }
        if cores.is_empty() {
            return Err(TopologyError::NoCores);
        }
        cost.validate().map_err(TopologyError::BadCostModel)?;
        for (i, c) in cores.iter().enumerate() {
            if c.node.index() >= nodes.len() {
                return Err(TopologyError::CoreOnMissingNode(CoreId(i as u16), c.node));
            }
        }
        for (i, l) in links.iter().enumerate() {
            for end in [l.a, l.b] {
                if end.index() >= nodes.len() {
                    return Err(TopologyError::LinkToMissingNode(LinkId(i as u16), end));
                }
            }
        }
        let (routes, hops) = compute_routes(nodes.len(), &links)?;
        let mut cores_per_node = vec![0u32; nodes.len()];
        for c in &cores {
            cores_per_node[c.node.index()] += 1;
        }
        Ok(Topology {
            nodes,
            cores,
            links,
            cost,
            routes,
            hops,
            cores_per_node,
        })
    }

    /// Number of NUMA nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u16).map(NodeId)
    }

    /// All core ids.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.cores.len() as u16).map(CoreId)
    }

    /// Node specification.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Core specification.
    pub fn core(&self, id: CoreId) -> &CoreSpec {
        &self.cores[id.index()]
    }

    /// Link specification.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The NUMA node a core belongs to.
    pub fn node_of_core(&self, id: CoreId) -> NodeId {
        self.cores[id.index()].node
    }

    /// Number of cores attached to one node (O(1), precomputed).
    pub fn core_count_of_node(&self, node: NodeId) -> usize {
        self.cores_per_node[node.index()] as usize
    }

    /// Cores attached to one node, in id order.
    pub fn cores_of_node(&self, node: NodeId) -> Vec<CoreId> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.node == node)
            .map(|(i, _)| CoreId(i as u16))
            .collect()
    }

    /// Link ids along the shortest route from `src` to `dst`
    /// (empty for `src == dst`).
    pub fn route(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        &self.routes[src.index()][dst.index()]
    }

    /// Hop count of the shortest route.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.hops[src.index()][dst.index()]
    }

    /// NUMA factor between two nodes (1.0 when local).
    pub fn numa_factor(&self, src: NodeId, dst: NodeId) -> f64 {
        self.cost.numa_factor(self.hops(src, dst))
    }

    /// Conservative lookahead for parallel virtual-time execution: the
    /// cheapest cross-node DRAM access in the machine, in nanoseconds.
    ///
    /// No shard can observe another shard's memory-system effects sooner
    /// than one remote access, so two shards whose clocks are within this
    /// bound of each other cannot causally interact inside the bound —
    /// the classic Chandy–Misra lookahead, read off the interconnect
    /// latency matrix. Single-node machines fall back to local latency.
    pub fn min_cross_node_latency_ns(&self) -> u64 {
        let cost = self.cost();
        let mut best = f64::INFINITY;
        for src in self.node_ids() {
            for dst in self.node_ids() {
                if src != dst {
                    let lat = cost.dram_latency_ns * self.numa_factor(src, dst);
                    if lat < best {
                        best = lat;
                    }
                }
            }
        }
        if best.is_finite() {
            best.ceil() as u64
        } else {
            cost.dram_latency_ns.ceil() as u64
        }
    }

    /// Memory tier of a node's bank.
    pub fn tier_of(&self, node: NodeId) -> crate::MemTier {
        self.nodes[node.index()].tier
    }

    /// Node ids whose bank is in the given tier, in id order.
    pub fn nodes_in_tier(&self, tier: crate::MemTier) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.tier_of(*n) == tier)
            .collect()
    }

    /// Does this machine have more than one memory tier?
    pub fn is_tiered(&self) -> bool {
        self.nodes.iter().any(|n| n.tier != crate::MemTier::Dram)
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable access to the cost model, for ablation experiments that
    /// perturb constants before the machine is built.
    pub fn cost_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }
}

/// BFS all-pairs routing. Returns (routes, hops).
#[allow(clippy::type_complexity)]
fn compute_routes(
    n: usize,
    links: &[Link],
) -> Result<(Vec<Vec<Vec<LinkId>>>, Vec<Vec<u32>>), TopologyError> {
    // Adjacency: node -> [(neighbor, link)] sorted by link id for
    // deterministic shortest-path tie-breaking.
    let mut adj: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); n];
    for (i, l) in links.iter().enumerate() {
        let id = LinkId(i as u16);
        adj[l.a.index()].push((l.b, id));
        adj[l.b.index()].push((l.a, id));
    }
    for a in &mut adj {
        a.sort_by_key(|(_, l)| *l);
    }

    let mut routes = vec![vec![Vec::new(); n]; n];
    let mut hops = vec![vec![0u32; n]; n];
    for src in 0..n {
        // BFS from src.
        let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n];
        let mut dist: Vec<Option<u32>> = vec![None; n];
        dist[src] = Some(0);
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for (v, l) in &adj[u] {
                let vi = v.index();
                if dist[vi].is_none() {
                    dist[vi] = Some(dist[u].unwrap() + 1);
                    prev[vi] = Some((u, *l));
                    q.push_back(vi);
                }
            }
        }
        for dst in 0..n {
            match dist[dst] {
                None => {
                    return Err(TopologyError::Disconnected(
                        NodeId(src as u16),
                        NodeId(dst as u16),
                    ))
                }
                Some(d) => {
                    hops[src][dst] = d;
                    // Reconstruct path dst -> src, then reverse.
                    let mut path = Vec::with_capacity(d as usize);
                    let mut cur = dst;
                    while cur != src {
                        let (p, l) = prev[cur].expect("reachable node has predecessor");
                        path.push(l);
                        cur = p;
                    }
                    path.reverse();
                    routes[src][dst] = path;
                }
            }
        }
    }
    Ok((routes, hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn opteron_preset_shape() {
        let t = presets::opteron_4p();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.core_count(), 16);
        assert_eq!(t.cores_of_node(NodeId(0)).len(), 4);
        // Square without diagonals: opposite corners are two hops apart.
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn routes_are_consistent_with_hops() {
        let t = presets::opteron_4p();
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(t.route(a, b).len() as u32, t.hops(a, b));
            }
        }
    }

    #[test]
    fn route_links_form_a_path() {
        let t = presets::opteron_4p();
        for a in t.node_ids() {
            for b in t.node_ids() {
                let mut at = a;
                for l in t.route(a, b) {
                    at = t.link(*l).other_end(at).expect("link continues the path");
                }
                assert_eq!(at, b, "route {a}->{b} must end at {b}");
            }
        }
    }

    #[test]
    fn numa_factor_matches_paper_band() {
        let t = presets::opteron_4p();
        let f1 = t.numa_factor(NodeId(0), NodeId(1));
        let f2 = t.numa_factor(NodeId(0), NodeId(3));
        assert!((1.2..=1.4).contains(&f1), "1-hop factor {f1}");
        assert!((1.2..=1.45).contains(&f2), "2-hop factor {f2}");
        assert_eq!(t.numa_factor(NodeId(2), NodeId(2)), 1.0);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let nodes = vec![NodeSpec::opteron_8347he(); 2];
        let cores = vec![CoreSpec::opteron_8347he(NodeId(0))];
        let err = Topology::new(nodes, cores, vec![], CostModel::default()).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected(_, _)));
    }

    #[test]
    fn bad_core_placement_rejected() {
        let nodes = vec![NodeSpec::opteron_8347he()];
        let cores = vec![CoreSpec::opteron_8347he(NodeId(5))];
        let err = Topology::new(nodes, cores, vec![], CostModel::default()).unwrap_err();
        assert!(matches!(err, TopologyError::CoreOnMissingNode(_, _)));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Topology::new(vec![], vec![], vec![], CostModel::default()),
            Err(TopologyError::NoNodes)
        ));
    }
}
