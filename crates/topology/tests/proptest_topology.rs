//! Property-based tests for topology routing and the cost model.

use numa_topology::{CoreSpec, CostModel, Link, NodeId, NodeSpec, Topology};
use proptest::prelude::*;

/// Build a random connected machine: a spanning path plus random extra
/// links.
fn random_machine(n: usize, extra: &[(usize, usize)]) -> Topology {
    let nodes = vec![NodeSpec::opteron_8347he(); n];
    let cores: Vec<CoreSpec> = (0..n)
        .map(|i| CoreSpec::opteron_8347he(NodeId(i as u16)))
        .collect();
    let mut links: Vec<Link> = (1..n)
        .map(|i| Link::hypertransport(NodeId((i - 1) as u16), NodeId(i as u16)))
        .collect();
    for (a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            links.push(Link::hypertransport(NodeId(a as u16), NodeId(b as u16)));
        }
    }
    Topology::new(nodes, cores, links, CostModel::default()).expect("connected by construction")
}

proptest! {
    /// On any connected machine: routes exist between all pairs, are
    /// symmetric in length, form valid link paths, and satisfy the
    /// triangle inequality.
    #[test]
    fn routing_invariants(
        n in 2usize..10,
        extra in proptest::collection::vec((0usize..10, 0usize..10), 0..8),
    ) {
        let t = random_machine(n, &extra);
        for a in t.node_ids() {
            for b in t.node_ids() {
                let hops = t.hops(a, b);
                prop_assert_eq!(hops, t.hops(b, a), "symmetric distance");
                prop_assert_eq!(t.route(a, b).len() as u32, hops);
                if a == b {
                    prop_assert_eq!(hops, 0);
                } else {
                    prop_assert!(hops >= 1);
                }
                // The route is a contiguous link path from a to b.
                let mut at = a;
                for l in t.route(a, b) {
                    at = t.link(*l).other_end(at).expect("path continuity");
                }
                prop_assert_eq!(at, b);
                // Triangle inequality through every intermediate node.
                for c in t.node_ids() {
                    prop_assert!(t.hops(a, b) <= t.hops(a, c) + t.hops(c, b));
                }
            }
        }
    }

    /// The NUMA factor is 1.0 locally and non-decreasing in hop count.
    #[test]
    fn numa_factor_monotone(hops in proptest::collection::vec(0u32..20, 2..10)) {
        let c = CostModel::default();
        prop_assert_eq!(c.numa_factor(0), 1.0);
        let mut sorted = hops.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert!(c.numa_factor(w[0]) <= c.numa_factor(w[1]));
        }
    }

    /// Copy-time helpers are linear in bytes.
    #[test]
    fn copy_times_linear(bytes in 1u64..10_000_000) {
        let c = CostModel::default();
        let one = c.kernel_copy_ns(bytes) as f64;
        let two = c.kernel_copy_ns(2 * bytes) as f64;
        prop_assert!((two - 2.0 * one).abs() <= 2.0, "{one} vs {two}");
        prop_assert!(c.user_copy_ns(bytes) < c.kernel_copy_ns(bytes));
    }

    /// pages_for is the exact ceiling division.
    #[test]
    fn pages_for_ceiling(bytes in 0u64..100_000_000) {
        let c = CostModel::default();
        let pages = c.pages_for(bytes);
        prop_assert!(pages * c.page_size >= bytes);
        if pages > 0 {
            prop_assert!((pages - 1) * c.page_size < bytes);
        }
    }
}
