//! Property test for the frame allocator's pressure accounting.
//!
//! Drives a [`FrameAllocator`] through random interleavings of the op
//! shapes the memory-pressure subsystem performs — alloc, free,
//! evacuate (alloc-elsewhere + copy + free, the reclaim/hot-remove
//! move), offline, online, watermark reconfiguration — and checks after
//! every op that per-node live/capacity/watermark accounting stays
//! consistent: live never exceeds capacity, the per-node live counts sum
//! to `live_total`, `allocated_total - freed_total` equals the number of
//! live frames actually reachable, no allocation ever lands on an
//! offline or full node, and `pressure_of` always matches the level
//! recomputed from first principles.

use numa_topology::NodeId;
use numa_vm::{FrameAllocator, FrameId, PressureLevel};
use proptest::prelude::*;

const NODES: usize = 4;

/// Op universe: (kind, node, value).
type OpVec = Vec<(u8, u8, u8)>;

fn op_strategy() -> impl Strategy<Value = OpVec> {
    proptest::collection::vec((0u8..6, 0u8..NODES as u8, 0u8..32), 1..200)
}

fn expected_pressure(fa: &FrameAllocator, node: NodeId) -> PressureLevel {
    let free = fa.capacity_of(node) - fa.live_on(node);
    if free <= fa.watermark_min(node) {
        PressureLevel::Min
    } else if free <= fa.watermark_low(node) {
        PressureLevel::Low
    } else {
        PressureLevel::Normal
    }
}

fn check_consistency(fa: &FrameAllocator, live: &[FrameId]) {
    let mut per_node = [0u64; NODES];
    for &id in live {
        per_node[fa.node_of(id).index()] += 1;
    }
    let mut total = 0;
    for (n, &node_live) in per_node.iter().enumerate() {
        let node = NodeId(n as u16);
        assert_eq!(fa.live_on(node), node_live, "live count on node {n}");
        assert!(
            fa.live_on(node) <= fa.capacity_of(node),
            "node {n} over capacity"
        );
        assert_eq!(
            fa.free_on(node),
            fa.capacity_of(node) - fa.live_on(node),
            "free count on node {n}"
        );
        assert_eq!(
            fa.pressure_of(node),
            expected_pressure(fa, node),
            "pressure level on node {n}"
        );
        total += fa.live_on(node);
    }
    assert_eq!(fa.live_total(), total, "global live total");
    assert_eq!(
        fa.allocated_total() - fa.freed_total(),
        live.len() as u64,
        "allocated minus freed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_survives_random_interleavings(ops in op_strategy()) {
        let mut fa = FrameAllocator::new(NODES, 12);
        let mut live: Vec<FrameId> = Vec::new();
        for (kind, node_raw, value) in ops {
            let node = NodeId(u16::from(node_raw));
            match kind {
                // Alloc on a node; must fail iff full or offline.
                0 => {
                    let full = fa.live_on(node) >= fa.capacity_of(node);
                    let offline = fa.is_offline(node);
                    match fa.alloc(node) {
                        Some(id) => {
                            prop_assert!(!full && !offline,
                                "alloc succeeded on a full/offline node");
                            prop_assert_eq!(fa.node_of(id), node);
                            live.push(id);
                        }
                        None => prop_assert!(full || offline,
                            "alloc failed with room on an online node"),
                    }
                }
                // Free a pseudo-random live frame.
                1 => {
                    if !live.is_empty() {
                        let id = live.swap_remove(usize::from(value) % live.len());
                        fa.free(id);
                    }
                }
                // Evacuate one resident page off `node`: alloc on the
                // nearest online node with room, copy, free the original
                // — exactly the reclaim/hot-remove move shape.
                2 => {
                    if let Some(pos) = live.iter().position(|&id| fa.node_of(id) == node) {
                        let dest = (0..NODES)
                            .map(|n| NodeId(n as u16))
                            .find(|&d| d != node && !fa.is_offline(d)
                                && fa.live_on(d) < fa.capacity_of(d));
                        if let Some(dest) = dest {
                            let new = fa.alloc(dest).expect("dest had room");
                            let old = live[pos];
                            fa.copy_contents(old, new);
                            fa.free(old);
                            live[pos] = new;
                        }
                    }
                }
                // Offline / online.
                3 => fa.set_offline(node),
                4 => fa.set_online(node),
                // Reconfigure watermarks (min <= low by construction).
                _ => {
                    let low = u64::from(value) % 8;
                    fa.set_watermarks(node, low, low / 2);
                }
            }
            check_consistency(&fa, &live);
        }
        // Drain everything: global accounting must return to zero live.
        for id in live.drain(..) {
            fa.free(id);
        }
        check_consistency(&fa, &live);
    }
}
