//! Property-based tests for the virtual-memory structures.

use numa_topology::NodeId;
use numa_vm::{
    AddressSpace, FrameAllocator, FrameId, MemPolicy, PageRange, PageTable, Protection, Pte,
    PteFlags, VirtAddr, VmaKind, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// `PageRange::covering` covers exactly the bytes it is given: every
    /// byte's page is in the range, and every page in the range holds at
    /// least one requested byte.
    #[test]
    fn covering_is_tight(addr in 0u64..1_000_000u64, len in 1u64..100_000u64) {
        let r = PageRange::covering(VirtAddr(addr), len);
        prop_assert!(r.contains(VirtAddr(addr).vpn()));
        prop_assert!(r.contains(VirtAddr(addr + len - 1).vpn()));
        prop_assert_eq!(r.start_vpn, VirtAddr(addr).vpn());
        prop_assert_eq!(r.end_vpn, VirtAddr(addr + len - 1).vpn() + 1);
        // Page count never exceeds len/PAGE_SIZE + 2 boundary pages.
        prop_assert!(r.pages() <= len / PAGE_SIZE + 2);
    }

    /// Intersection is commutative, contained in both operands, and
    /// idempotent.
    #[test]
    fn intersect_properties(
        a0 in 0u64..1000, alen in 0u64..1000,
        b0 in 0u64..1000, blen in 0u64..1000,
    ) {
        let a = PageRange::new(a0, a0 + alen);
        let b = PageRange::new(b0, b0 + blen);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        for vpn in ab.iter() {
            prop_assert!(a.contains(vpn) && b.contains(vpn));
        }
        prop_assert_eq!(ab.intersect(&a), ab);
    }

    /// Arbitrary mprotect sequences over a mapped region never violate
    /// the address-space invariants, and the final protection of every
    /// page equals the last mprotect that covered it.
    #[test]
    fn mprotect_sequences_keep_invariants(
        ops in proptest::collection::vec((0u64..64, 1u64..32, 0u8..3), 1..25)
    ) {
        let mut space = AddressSpace::new();
        let base = space
            .mmap(96 * PAGE_SIZE, Protection::ReadWrite, VmaKind::PrivateAnonymous,
                  MemPolicy::FirstTouch)
            .unwrap();
        let base_vpn = base.vpn();
        let mut expected = [Protection::ReadWrite; 96];
        for (start, len, prot) in ops {
            let prot = match prot {
                0 => Protection::None,
                1 => Protection::ReadOnly,
                _ => Protection::ReadWrite,
            };
            let end = (start + len).min(96);
            if start >= end { continue; }
            space
                .mprotect(PageRange::new(base_vpn + start, base_vpn + end), prot)
                .unwrap();
            for p in start..end {
                expected[p as usize] = prot;
            }
            space.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant broken: {e}"))
            })?;
        }
        for (i, want) in expected.iter().enumerate() {
            let got = space
                .find_vma(VirtAddr::from_vpn(base_vpn + i as u64))
                .unwrap()
                .prot;
            prop_assert_eq!(got, *want, "page {}", i);
        }
    }

    /// VMA count stays bounded by the number of distinct protection
    /// boundaries (merging works): after any op sequence it never exceeds
    /// the page count, and restoring everything to RW collapses to 1.
    #[test]
    fn mprotect_merge_collapses(
        ops in proptest::collection::vec((0u64..32, 1u64..16, 0u8..3), 1..15)
    ) {
        let mut space = AddressSpace::new();
        let base = space
            .mmap(48 * PAGE_SIZE, Protection::ReadWrite, VmaKind::PrivateAnonymous,
                  MemPolicy::FirstTouch)
            .unwrap();
        let base_vpn = base.vpn();
        for (start, len, prot) in ops {
            let prot = match prot {
                0 => Protection::None,
                1 => Protection::ReadOnly,
                _ => Protection::ReadWrite,
            };
            let end = (start + len).min(48);
            if start >= end { continue; }
            space.mprotect(PageRange::new(base_vpn + start, base_vpn + end), prot).unwrap();
        }
        space
            .mprotect(PageRange::new(base_vpn, base_vpn + 48), Protection::ReadWrite)
            .unwrap();
        prop_assert_eq!(space.vma_count(), 1, "uniform protection must merge to one VMA");
    }

    /// Frame allocator conservation: after any alloc/free interleaving,
    /// live counts equal allocations minus frees, per node and globally,
    /// and capacity is never exceeded.
    #[test]
    fn frame_allocator_conservation(
        ops in proptest::collection::vec((0u16..3, any::<bool>()), 1..200)
    ) {
        let cap = 20u64;
        let mut fa = FrameAllocator::new(3, cap);
        let mut live: Vec<Vec<numa_vm::FrameId>> = vec![Vec::new(); 3];
        for (node, is_alloc) in ops {
            let n = NodeId(node);
            if is_alloc {
                match fa.alloc(n) {
                    Some(id) => live[node as usize].push(id),
                    None => prop_assert_eq!(fa.live_on(n), cap, "alloc may only fail when full"),
                }
            } else if let Some(id) = live[node as usize].pop() {
                fa.free(id);
            }
            for k in 0..3u16 {
                prop_assert_eq!(fa.live_on(NodeId(k)), live[k as usize].len() as u64);
                prop_assert!(fa.live_on(NodeId(k)) <= cap);
            }
        }
        let total_live: usize = live.iter().map(Vec::len).sum();
        prop_assert_eq!(fa.live_total(), total_live as u64);
    }

    /// Interleave policy is a pure function of vpn and spreads exactly
    /// evenly over whole rounds.
    #[test]
    fn interleave_even_spread(nodes in 1usize..8, rounds in 1u64..20) {
        let policy = MemPolicy::interleave_all(nodes);
        let mut counts = vec![0u64; nodes];
        for vpn in 0..(nodes as u64 * rounds) {
            let n = policy.choose_node(vpn, NodeId(0));
            counts[n.index()] += 1;
        }
        prop_assert!(counts.iter().all(|c| *c == rounds), "{counts:?}");
    }

    /// The bitmap-slab page table is PTE-for-PTE equivalent to a naive
    /// `BTreeMap` reference model under random interleaved sequences of
    /// map (ascending, descending and 1-in-64 sparse orders) / unmap /
    /// protect / migrate / huge-remap / reserve / release ops. This is
    /// the representation-only guarantee the SoA rewrite rests on: every
    /// observable read (`get`, `len`, ordered iteration, `walk_range`,
    /// `stats`) agrees with the model after every op.
    #[test]
    fn slab_table_matches_btreemap_reference(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..192, 1u64..48, 0u64..1000), 1..60)
    ) {
        let mut pt = PageTable::new();
        let mut model: BTreeMap<u64, Pte> = BTreeMap::new();
        let mut next_frame = 0u64;
        for (kind, start, len, salt) in ops {
            let range = PageRange::new(start, start + len);
            match kind {
                // Map every page of the range to fresh frames.
                0 => {
                    for vpn in range.iter() {
                        let pte = Pte::present_rw(FrameId(next_frame));
                        next_frame += 1;
                        prop_assert_eq!(pt.map(vpn, pte), model.insert(vpn, pte),
                            "map({}) disagreed on the previous entry", vpn);
                    }
                }
                // Unmap every page of the range.
                1 => {
                    for vpn in range.iter() {
                        prop_assert_eq!(pt.unmap(vpn), model.remove(&vpn),
                            "unmap({}) disagreed on the removed entry", vpn);
                    }
                }
                // Protect: drop the WRITE bit over the range (the mprotect
                // PTE sync shape), via the linear batch walk.
                2 => {
                    pt.update_range(range, |_, pte| {
                        pte.flags = pte.flags & !PteFlags::WRITE;
                    });
                    for (_, pte) in model.range_mut(range.start_vpn..range.end_vpn) {
                        pte.flags = pte.flags & !PteFlags::WRITE;
                    }
                }
                // Migrate: repoint every mapped page of the range at a new
                // frame (the move_pages PTE flip).
                3 => {
                    pt.update_range(range, |vpn, pte| {
                        pte.frame = FrameId(vpn * 100_000 + salt);
                    });
                    for (vpn, pte) in model.range_mut(range.start_vpn..range.end_vpn) {
                        pte.frame = FrameId(vpn * 100_000 + salt);
                    }
                }
                // Huge-remap: drop the range's small mappings, then map the
                // head page only, HUGE-flagged (the mmap_huge shape).
                4 => {
                    pt.release_range(range);
                    model.retain(|vpn, _| !range.contains(*vpn));
                    let mut head = Pte::present_rw(FrameId(next_frame));
                    next_frame += 1;
                    head.flags |= PteFlags::HUGE;
                    pt.map(range.start_vpn, head);
                    model.insert(range.start_vpn, head);
                }
                // Descending map: the order that used to fragment into one
                // single-page slab per page before grow_for merged forward.
                5 => {
                    for vpn in (range.start_vpn..range.end_vpn).rev() {
                        let pte = Pte::present_rw(FrameId(next_frame));
                        next_frame += 1;
                        prop_assert_eq!(pt.map(vpn, pte), model.insert(vpn, pte),
                            "descending map({}) disagreed on the previous entry", vpn);
                    }
                }
                // Sparse map: 1-in-64 occupancy, exercising single-bit
                // words in the present bitmap.
                6 => {
                    for vpn in range.iter().filter(|v| v % 64 == salt % 64) {
                        let pte = Pte::present_rw(FrameId(next_frame));
                        next_frame += 1;
                        prop_assert_eq!(pt.map(vpn, pte), model.insert(vpn, pte),
                            "sparse map({}) disagreed on the previous entry", vpn);
                    }
                }
                // Reserve: pure storage pre-sizing, must be unobservable.
                _ => pt.reserve_range(range),
            }
            prop_assert_eq!(pt.len(), model.len(), "len diverged");
        }
        // Full ordered iteration agrees entry-for-entry.
        let got: Vec<(u64, Pte)> = pt.iter().collect();
        let want: Vec<(u64, Pte)> = model.iter().map(|(v, p)| (*v, *p)).collect();
        prop_assert_eq!(got, want, "ordered iteration diverged");
        // Point lookups agree across the whole domain (mapped and not).
        for vpn in 0..256u64 {
            prop_assert_eq!(pt.get(vpn), model.get(&vpn).copied(),
                "get({}) diverged", vpn);
        }
        // Range walks agree on arbitrary windows.
        for (lo, hi) in [(0u64, 64u64), (50, 150), (100, 256), (0, 256)] {
            let got: Vec<(u64, Pte)> =
                pt.walk_range(PageRange::new(lo, hi)).collect();
            let want: Vec<(u64, Pte)> =
                model.range(lo..hi).map(|(v, p)| (*v, *p)).collect();
            prop_assert_eq!(got, want, "walk_range({}, {}) diverged", lo, hi);
        }
        // The incremental aggregates match a from-scratch recount.
        let stats = pt.stats();
        prop_assert_eq!(stats.mapped as usize, model.len());
        let huge = model.values().filter(|p| p.flags.contains(PteFlags::HUGE)).count();
        prop_assert_eq!(stats.huge as usize, huge, "huge tally diverged");
        let nt = model.values().filter(|p| p.flags.contains(PteFlags::NEXT_TOUCH)).count();
        prop_assert_eq!(stats.next_touch as usize, nt, "next-touch tally diverged");
    }

    /// Mapping a contiguous run in *any* order — ascending, descending,
    /// or an arbitrary shuffle — coalesces into exactly one slab: the
    /// slab count depends on the final shape, not the arrival order.
    #[test]
    fn contiguous_maps_coalesce_regardless_of_order(
        n in 2u64..160, seed in 0u64..1_000_000
    ) {
        let mut order: Vec<u64> = (0..n).collect();
        // Deterministic splitmix-driven Fisher–Yates shuffle.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ (state >> 31);
            order.swap(i, (state as usize) % (i + 1));
        }
        let mut pt = PageTable::new();
        for &vpn in &order {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        prop_assert_eq!(pt.len() as u64, n);
        prop_assert_eq!(pt.stats().slabs, 1, "order {order:?} fragmented");
        let got: Vec<u64> = pt.iter().map(|(v, _)| v).collect();
        prop_assert_eq!(got, (0..n).collect::<Vec<u64>>());
    }

    /// 1-in-64 sparse occupancy over a large reservation: walks skip the
    /// 63-absent-bit words cheaply but must still yield exactly the
    /// mapped pages, in order, over arbitrary windows.
    #[test]
    fn sparse_occupancy_walks_agree(
        offset in 0u64..64, words in 1u64..40,
        win_lo in 0u64..2000, win_len in 0u64..2600,
    ) {
        let span = words * 64;
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, span));
        let mapped: Vec<u64> = (0..words).map(|w| w * 64 + offset).collect();
        for &vpn in &mapped {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        prop_assert_eq!(pt.stats().slabs, 1);
        prop_assert_eq!(pt.len() as u64, words);
        let (lo, hi) = (win_lo.min(span), (win_lo + win_len).min(span));
        let got: Vec<u64> = pt.walk_range(PageRange::new(lo, hi)).map(|(v, _)| v).collect();
        let want: Vec<u64> = mapped.iter().copied().filter(|v| (lo..hi).contains(v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Huge-converted extents store one record per huge page: lookups on
    /// non-head pages miss, walks yield exactly the mapped heads, and
    /// releasing the extent returns one PTE per mapped head.
    #[test]
    fn huge_records_cover_heads_only(
        huge_pages in 1u64..4, mask in 0u64..8, probe in 0u64..1_000,
    ) {
        use numa_vm::PAGES_PER_HUGE;
        let span = huge_pages * PAGES_PER_HUGE;
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, span));
        prop_assert!(pt.convert_range_to_huge(PageRange::new(0, span)));
        let heads: Vec<u64> = (0..huge_pages)
            .filter(|k| mask & (1 << k) != 0)
            .map(|k| k * PAGES_PER_HUGE)
            .collect();
        for &head in &heads {
            let mut pte = Pte::present_rw(FrameId(head));
            pte.flags |= PteFlags::HUGE;
            pt.map(head, pte);
        }
        prop_assert_eq!(pt.len(), heads.len());
        prop_assert_eq!(pt.stats().huge as usize, heads.len());
        prop_assert_eq!(pt.stats().slabs, 1, "one slab records the whole extent");
        let got: Vec<u64> = pt.iter().map(|(v, _)| v).collect();
        prop_assert_eq!(got, heads.clone());
        let vpn = probe % span;
        let expect = heads.contains(&vpn);
        prop_assert_eq!(pt.get(vpn).is_some(), expect, "get({}) diverged", vpn);
        let removed = pt.release_range(PageRange::new(0, span));
        prop_assert_eq!(removed.len(), heads.len());
        prop_assert!(pt.is_empty());
    }

    /// Next-touch marking and clearing are inverses on the access bits.
    #[test]
    fn next_touch_mark_clear_roundtrip(frame in 0u64..1000) {
        let mut pte = Pte::present_rw(numa_vm::FrameId(frame));
        let before = pte.flags;
        pte.mark_next_touch();
        prop_assert!(pte.is_next_touch());
        prop_assert!(!pte.permits(false));
        pte.clear_next_touch();
        prop_assert_eq!(pte.flags, before);
    }
}
