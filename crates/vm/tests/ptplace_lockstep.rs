//! Lockstep property test for page-table replication (ptplace).
//!
//! Drives an [`AddressSpace`] with Mitosis-style per-node replicas
//! through random interleaved sequences of the five primary-table
//! mutation shapes the kernel performs — fault map, unmap, protect,
//! migrate (frame flip), huge-remap — each followed by the
//! `pt_note_update` call the kernel issues. The replication protocol's
//! contract: **at every sync point each replica agrees PTE-for-PTE with
//! the primary.**
//!
//! * Eager mode: every `pt_note_update` is a sync point — all replicas
//!   agree after every single op.
//! * Lazy mode: updates only mark ranges stale; a replica's sync point
//!   is its `pt_sync_node` reconcile. Reconciling a rotating node after
//!   each op exercises staleness accumulated across many ops; a final
//!   reconcile of all nodes must converge everything.

use numa_topology::NodeId;
use numa_vm::{AddressSpace, FrameId, PageRange, PtPlacement, PtSyncMode, Pte, PteFlags};
use proptest::prelude::*;

const NODES: usize = 4;
/// Mutation-op universe: (kind, start-vpn, page-count, salt).
type OpVec = Vec<(u8, u64, u64, u64)>;

fn op_strategy() -> impl Strategy<Value = OpVec> {
    proptest::collection::vec((0u8..5, 0u64..192, 1u64..48, 0u64..1000), 1..60)
}

/// Apply one kernel-shaped mutation to the primary table and return the
/// range `pt_note_update` must be told about.
fn apply(
    space: &mut AddressSpace,
    kind: u8,
    start: u64,
    len: u64,
    salt: u64,
    next_frame: &mut u64,
) -> PageRange {
    let range = PageRange::new(start, start + len);
    match kind {
        // Fault-in: map every page of the range to fresh frames.
        0 => {
            for vpn in range.iter() {
                let pte = Pte::present_rw(FrameId(*next_frame));
                *next_frame += 1;
                space.page_table.map(vpn, pte);
            }
        }
        // munmap: drop every page of the range.
        1 => {
            for vpn in range.iter() {
                space.page_table.unmap(vpn);
            }
        }
        // mprotect: drop the WRITE bit over the range.
        2 => {
            space.page_table.update_range(range, |_, pte| {
                pte.flags = pte.flags & !PteFlags::WRITE;
            });
        }
        // move_pages: repoint every mapped page at a new frame.
        3 => {
            space.page_table.update_range(range, |vpn, pte| {
                pte.frame = FrameId(vpn * 100_000 + salt);
            });
        }
        // Huge-remap: drop the small mappings, map the head HUGE.
        _ => {
            space.page_table.release_range(range);
            let mut head = Pte::present_rw(FrameId(*next_frame));
            *next_frame += 1;
            head.flags |= PteFlags::HUGE;
            space.page_table.map(range.start_vpn, head);
        }
    }
    range
}

proptest! {
    /// Eager write-through: after every op's `pt_note_update`, every
    /// replica agrees PTE-for-PTE with the primary, and nothing is ever
    /// left stale.
    #[test]
    fn eager_replicas_agree_after_every_update(ops in op_strategy()) {
        let mut space = AddressSpace::new();
        space.pt_configure(PtPlacement::Replicated, PtSyncMode::Eager, NODES);
        let mut next_frame = 0u64;
        for (kind, start, len, salt) in ops {
            let range = apply(&mut space, kind, start, len, salt, &mut next_frame);
            space.pt_note_update(range);
            let replicas = space.pt_replicas().unwrap();
            for node in 0..NODES {
                let node = NodeId(node as u16);
                prop_assert!(!replicas.is_stale(node), "eager mode never leaves {node} stale");
                prop_assert!(
                    replicas.agrees_with(node, &space.page_table),
                    "replica on {node} diverged from the primary after {}({start}+{len})",
                    kind
                );
            }
        }
    }

    /// Lazy reconcile: updates only mark replicas stale; a replica
    /// agrees with the primary exactly at its own sync points. A
    /// rotating node reconciles after each op (staleness accumulated
    /// over several ops collapses in one reconcile), and a final
    /// all-node reconcile converges every replica.
    #[test]
    fn lazy_replicas_agree_at_sync_points(ops in op_strategy()) {
        let mut space = AddressSpace::new();
        space.pt_configure(PtPlacement::Replicated, PtSyncMode::Lazy, NODES);
        let mut next_frame = 0u64;
        for (i, (kind, start, len, salt)) in ops.into_iter().enumerate() {
            let range = apply(&mut space, kind, start, len, salt, &mut next_frame);
            let written = space.pt_note_update(range);
            prop_assert_eq!(written, 0, "lazy updates must not write replicas");
            if range.pages() > 0 {
                for node in 0..NODES {
                    prop_assert!(
                        space.pt_node_is_stale(NodeId(node as u16)),
                        "an un-reconciled replica must be stale after an update"
                    );
                }
            }
            // Sync point for one rotating node only.
            let node = NodeId((i % NODES) as u16);
            space.pt_sync_node(node);
            prop_assert!(!space.pt_node_is_stale(node));
            prop_assert!(
                space.pt_replicas().unwrap().agrees_with(node, &space.page_table),
                "replica on {node} diverged at its sync point"
            );
        }
        // Final sync point for everyone.
        for node in 0..NODES {
            let node = NodeId(node as u16);
            space.pt_sync_node(node);
            let replicas = space.pt_replicas().unwrap();
            prop_assert!(!replicas.is_stale(node));
            prop_assert!(
                replicas.agrees_with(node, &space.page_table),
                "replica on {node} diverged after the final reconcile"
            );
        }
    }

    /// Mode equivalence: the same op sequence leaves eager replicas and
    /// fully-reconciled lazy replicas in identical states — the sync
    /// discipline changes *when* PTEs are written, never *what*.
    #[test]
    fn eager_and_reconciled_lazy_converge(ops in op_strategy()) {
        let mut eager = AddressSpace::new();
        eager.pt_configure(PtPlacement::Replicated, PtSyncMode::Eager, NODES);
        let mut lazy = AddressSpace::new();
        lazy.pt_configure(PtPlacement::Replicated, PtSyncMode::Lazy, NODES);
        let (mut fe, mut fl) = (0u64, 0u64);
        for (kind, start, len, salt) in ops {
            let re = apply(&mut eager, kind, start, len, salt, &mut fe);
            eager.pt_note_update(re);
            let rl = apply(&mut lazy, kind, start, len, salt, &mut fl);
            lazy.pt_note_update(rl);
        }
        for node in 0..NODES {
            let node = NodeId(node as u16);
            lazy.pt_sync_node(node);
            let er = eager.pt_replicas().unwrap().replica(node);
            let lr = lazy.pt_replicas().unwrap().replica(node);
            let e: Vec<(u64, Pte)> = er.iter().collect();
            let l: Vec<(u64, Pte)> = lr.iter().collect();
            prop_assert_eq!(e, l, "eager and lazy replicas diverged on {}", node);
        }
    }
}
