//! NUMA memory policies.
//!
//! The placement half of the paper's background (§2.2): where does a page
//! go when it is first touched? Linux answers with a per-VMA (or
//! per-process) policy. `FirstTouch` is the kernel default; `Interleave` is
//! what the paper uses as the best static allocation for the LU experiment
//! (§4.5: "the data was initially allocated among all NUMA nodes in an
//! interleaved manner").

use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Placement policy for newly-allocated pages.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemPolicy {
    /// Allocate on the faulting thread's node (the Linux default).
    #[default]
    FirstTouch,
    /// Always allocate on a fixed node (`mbind`/`MPOL_BIND`).
    Bind(NodeId),
    /// Round-robin by page number across the given nodes
    /// (`MPOL_INTERLEAVE`).
    Interleave(Vec<NodeId>),
    /// Prefer a node but fall back to the faulting node when the preferred
    /// bank is full (`MPOL_PREFERRED`).
    Preferred(NodeId),
}

impl MemPolicy {
    /// The node a fresh page at `vpn` should be allocated on, when the
    /// faulting thread runs on `local`.
    ///
    /// For `Interleave` the page *number* indexes the node list, matching
    /// Linux's `offset % nnodes` behaviour, so consecutive pages of a
    /// buffer land on consecutive nodes.
    pub fn choose_node(&self, vpn: u64, local: NodeId) -> NodeId {
        match self {
            MemPolicy::FirstTouch => local,
            MemPolicy::Bind(n) => *n,
            MemPolicy::Interleave(nodes) => {
                if nodes.is_empty() {
                    local
                } else {
                    nodes[(vpn % nodes.len() as u64) as usize]
                }
            }
            MemPolicy::Preferred(n) => *n,
        }
    }

    /// Fallback node when the chosen bank is out of frames. `Bind` has no
    /// fallback (the allocation fails, like the real kernel under
    /// `MPOL_BIND` strictness); the others fall back to the faulting node.
    pub fn fallback_node(&self, local: NodeId) -> Option<NodeId> {
        match self {
            MemPolicy::Bind(_) => None,
            _ => Some(local),
        }
    }

    /// An interleave policy across all `node_count` nodes.
    pub fn interleave_all(node_count: usize) -> MemPolicy {
        MemPolicy::Interleave((0..node_count as u16).map(NodeId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_local() {
        let p = MemPolicy::FirstTouch;
        assert_eq!(p.choose_node(0, NodeId(2)), NodeId(2));
        assert_eq!(p.choose_node(99, NodeId(0)), NodeId(0));
    }

    #[test]
    fn bind_ignores_local() {
        let p = MemPolicy::Bind(NodeId(3));
        assert_eq!(p.choose_node(0, NodeId(1)), NodeId(3));
        assert_eq!(p.fallback_node(NodeId(1)), None);
    }

    #[test]
    fn interleave_round_robins_by_vpn() {
        let p = MemPolicy::interleave_all(4);
        assert_eq!(p.choose_node(0, NodeId(9)), NodeId(0));
        assert_eq!(p.choose_node(1, NodeId(9)), NodeId(1));
        assert_eq!(p.choose_node(4, NodeId(9)), NodeId(0));
        assert_eq!(p.choose_node(7, NodeId(9)), NodeId(3));
    }

    #[test]
    fn interleave_empty_falls_back_to_local() {
        let p = MemPolicy::Interleave(vec![]);
        assert_eq!(p.choose_node(5, NodeId(1)), NodeId(1));
    }

    #[test]
    fn preferred_with_fallback() {
        let p = MemPolicy::Preferred(NodeId(2));
        assert_eq!(p.choose_node(0, NodeId(0)), NodeId(2));
        assert_eq!(p.fallback_node(NodeId(0)), Some(NodeId(0)));
    }

    #[test]
    fn default_is_first_touch() {
        assert_eq!(MemPolicy::default(), MemPolicy::FirstTouch);
    }
}
