//! Virtual addresses and page ranges.

use crate::PAGE_SIZE;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A virtual address within the simulated process.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Virtual page number containing this address.
    pub fn vpn(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Round down to the containing page boundary.
    pub fn page_align_down(self) -> VirtAddr {
        VirtAddr(self.0 - self.page_offset())
    }

    /// Round up to the next page boundary (identity if already aligned).
    pub fn page_align_up(self) -> VirtAddr {
        VirtAddr(self.0.div_ceil(PAGE_SIZE) * PAGE_SIZE)
    }

    /// Is this address page-aligned?
    pub fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// The first address of virtual page `vpn`.
    pub fn from_vpn(vpn: u64) -> VirtAddr {
        VirtAddr(vpn * PAGE_SIZE)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A half-open range of virtual pages `[start_vpn, end_vpn)`.
///
/// Almost every kernel operation in the paper — `move_pages`, `madvise`,
/// `mprotect` — works on page granularity, so ranges are stored as page
/// numbers rather than byte addresses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageRange {
    /// First page in the range.
    pub start_vpn: u64,
    /// One past the last page in the range.
    pub end_vpn: u64,
}

impl PageRange {
    /// Range covering `[start_vpn, end_vpn)`. `end_vpn >= start_vpn`.
    pub fn new(start_vpn: u64, end_vpn: u64) -> Self {
        assert!(end_vpn >= start_vpn, "inverted page range");
        PageRange { start_vpn, end_vpn }
    }

    /// The pages spanned by `[addr, addr+len)` (len 0 gives an empty range).
    pub fn covering(addr: VirtAddr, len: u64) -> Self {
        if len == 0 {
            return PageRange::new(addr.vpn(), addr.vpn());
        }
        let start = addr.vpn();
        let end = (addr + (len - 1)).vpn() + 1;
        PageRange::new(start, end)
    }

    /// Number of pages in the range.
    pub fn pages(&self) -> u64 {
        self.end_vpn - self.start_vpn
    }

    /// Number of bytes in the range.
    pub fn bytes(&self) -> u64 {
        self.pages() * PAGE_SIZE
    }

    /// Is the range empty?
    pub fn is_empty(&self) -> bool {
        self.start_vpn == self.end_vpn
    }

    /// Does the range contain page `vpn`?
    pub fn contains(&self, vpn: u64) -> bool {
        (self.start_vpn..self.end_vpn).contains(&vpn)
    }

    /// First address of the range.
    pub fn start_addr(&self) -> VirtAddr {
        VirtAddr::from_vpn(self.start_vpn)
    }

    /// Iterate over the page numbers.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start_vpn..self.end_vpn
    }

    /// Intersection with another range (possibly empty).
    pub fn intersect(&self, other: &PageRange) -> PageRange {
        let start = self.start_vpn.max(other.start_vpn);
        let end = self.end_vpn.min(other.end_vpn).max(start);
        PageRange::new(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_math() {
        let a = VirtAddr(PAGE_SIZE * 3 + 17);
        assert_eq!(a.vpn(), 3);
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.page_align_down(), VirtAddr(PAGE_SIZE * 3));
        assert_eq!(a.page_align_up(), VirtAddr(PAGE_SIZE * 4));
        assert!(!a.is_page_aligned());
        assert!(a.page_align_down().is_page_aligned());
    }

    #[test]
    fn align_up_is_identity_on_aligned() {
        let a = VirtAddr(PAGE_SIZE * 5);
        assert_eq!(a.page_align_up(), a);
    }

    #[test]
    fn covering_exact_and_partial() {
        // Exactly one page.
        let r = PageRange::covering(VirtAddr(0), PAGE_SIZE);
        assert_eq!((r.start_vpn, r.end_vpn), (0, 1));
        // One byte into the next page.
        let r = PageRange::covering(VirtAddr(0), PAGE_SIZE + 1);
        assert_eq!((r.start_vpn, r.end_vpn), (0, 2));
        // Unaligned start.
        let r = PageRange::covering(VirtAddr(PAGE_SIZE - 1), 2);
        assert_eq!((r.start_vpn, r.end_vpn), (0, 2));
        // Empty.
        let r = PageRange::covering(VirtAddr(123), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn range_accessors() {
        let r = PageRange::new(10, 14);
        assert_eq!(r.pages(), 4);
        assert_eq!(r.bytes(), 4 * PAGE_SIZE);
        assert!(r.contains(10) && r.contains(13));
        assert!(!r.contains(14));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
        assert_eq!(r.start_addr(), VirtAddr(10 * PAGE_SIZE));
    }

    #[test]
    fn intersect() {
        let a = PageRange::new(0, 10);
        let b = PageRange::new(5, 15);
        assert_eq!(a.intersect(&b), PageRange::new(5, 10));
        let c = PageRange::new(20, 30);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        PageRange::new(5, 4);
    }
}
