//! Page-table placement: per-node homes and Mitosis-style replicas.
//!
//! The baseline simulator treats address translation as free — a page walk
//! costs the same whether the page table lives next to the walking core or
//! three hops away. Mitosis (ASPLOS'20, see PAPERS.md) measured remote
//! page-table walks at up to ~3.1x the local cost and fixed it with
//! transparent per-node page-table replicas; numaPTE extends that with
//! page-table migration when a thread moves across nodes.
//!
//! This module holds the *mechanism* half of that design:
//!
//! * [`PtPlacement`] — where an address space's page table lives:
//!   a [`PtPlacement::SingleHome`] node (the Linux default: wherever the
//!   radix tree happened to be allocated) or [`PtPlacement::Replicated`]
//!   per-node copies;
//! * [`PtReplicaSet`] — the per-node replica tables, kept in sync with the
//!   primary by a word-parallel bitmap diff over the struct-of-arrays PTE
//!   slabs ([`PtReplicaSet::sync_range`], delegating to
//!   [`PageTable::sync_from`]), either eagerly on every update or lazily
//!   (ranges are marked stale and reconciled on the next walk from that
//!   node, [`PtSyncMode`]).
//!
//! All *timing* (walk latency, sync charges, shootdowns) lives in the
//! kernel and machine layers; like the rest of `numa-vm` this file only
//! maintains state and invariants.

use crate::addr::PageRange;
use crate::page_table::PageTable;
use numa_topology::NodeId;

/// Where an address space's page table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtPlacement {
    /// The whole page table homed on one node. Walks from other nodes pay
    /// the interconnect distance to this node on every TLB miss.
    SingleHome(NodeId),
    /// One replica per node (Mitosis): every walk is node-local, updates
    /// must be propagated to all replicas.
    Replicated,
}

/// How replicas track the primary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PtSyncMode {
    /// Every PTE update is written through to all replicas immediately
    /// (Mitosis' design: updates are rare compared to walks).
    #[default]
    Eager,
    /// Updates only mark the affected range stale in every replica; a
    /// stale replica is reconciled on the next walk from its node.
    Lazy,
}

/// Per-node page-table replicas plus staleness bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct PtReplicaSet {
    /// One replica table per NUMA node, indexed by node id.
    replicas: Vec<PageTable>,
    /// Stale (not-yet-reconciled) ranges per node, in arrival order.
    stale: Vec<Vec<PageRange>>,
}

impl PtReplicaSet {
    /// Build replicas for `nodes` nodes, each starting as a copy of
    /// `primary`.
    pub fn new(nodes: usize, primary: &PageTable) -> Self {
        PtReplicaSet {
            replicas: vec![primary.clone(); nodes],
            stale: vec![Vec::new(); nodes],
        }
    }

    /// Number of replicas (= NUMA nodes).
    pub fn node_count(&self) -> usize {
        self.replicas.len()
    }

    /// The replica table of `node` (tests and invariant checks).
    pub fn replica(&self, node: NodeId) -> &PageTable {
        &self.replicas[node.index()]
    }

    /// Does `node`'s replica have stale ranges awaiting reconciliation?
    pub fn is_stale(&self, node: NodeId) -> bool {
        !self.stale[node.index()].is_empty()
    }

    /// Reconcile one replica with the primary over `range`: entries
    /// present only in the replica are unmapped, entries present only in
    /// the primary are installed, and entries that differ are overwritten.
    /// Returns the number of PTEs written (the quantity the cost model
    /// charges for).
    ///
    /// The diff is [`PageTable::sync_from`]: geometry-aligned slab pairs
    /// are compared word-parallel (presence XOR + whole-slice payload
    /// equality), so clean 64-record blocks cost two loads instead of 64
    /// entry compares.
    pub fn sync_range(replica: &mut PageTable, primary: &PageTable, range: PageRange) -> u64 {
        replica.sync_from(primary, range)
    }

    /// Eagerly propagate an update of `range` to every replica. Returns
    /// the total number of PTEs written across all replicas.
    pub fn propagate(&mut self, primary: &PageTable, range: PageRange) -> u64 {
        let mut changed = 0;
        for r in &mut self.replicas {
            changed += Self::sync_range(r, primary, range);
        }
        changed
    }

    /// Lazily mark `range` stale in every replica. Adjacent or overlapping
    /// back-to-back updates are coalesced into the last recorded range so
    /// page-at-a-time fault storms do not grow the list without bound.
    pub fn mark_stale(&mut self, range: PageRange) {
        if range.is_empty() {
            return;
        }
        for list in &mut self.stale {
            if let Some(last) = list.last_mut() {
                if range.start_vpn <= last.end_vpn && last.start_vpn <= range.end_vpn {
                    last.start_vpn = last.start_vpn.min(range.start_vpn);
                    last.end_vpn = last.end_vpn.max(range.end_vpn);
                    continue;
                }
            }
            list.push(range);
        }
    }

    /// Reconcile every stale range of `node`'s replica against the
    /// primary. Returns the number of PTEs written (0 when it was clean).
    pub fn reconcile(&mut self, node: NodeId, primary: &PageTable) -> u64 {
        let ranges = std::mem::take(&mut self.stale[node.index()]);
        let replica = &mut self.replicas[node.index()];
        let mut changed = 0;
        for range in ranges {
            changed += Self::sync_range(replica, primary, range);
        }
        changed
    }

    /// Do the mapped entries of `node`'s replica equal the primary's,
    /// PTE for PTE? (Lockstep-test support; storage layout may differ, so
    /// equality is over the mapped-entry sequences.)
    pub fn agrees_with(&self, node: NodeId, primary: &PageTable) -> bool {
        let mut a = self.replicas[node.index()].iter();
        let mut b = primary.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some((va, pa)), Some((vb, pb))) if va == vb && pa == pb => {}
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::Pte;
    use crate::FrameId;

    fn pt_with(vpns: &[u64]) -> PageTable {
        let mut pt = PageTable::new();
        for &v in vpns {
            pt.map(v, Pte::present_rw(FrameId(v)));
        }
        pt
    }

    #[test]
    fn sync_installs_removes_and_overwrites() {
        let mut primary = pt_with(&[1, 2, 5]);
        let mut replica = pt_with(&[2, 3]);
        // Make an entry differ in place.
        primary.get_mut(2).unwrap().frame = FrameId(99);
        let changed = PtReplicaSet::sync_range(&mut replica, &primary, PageRange::new(0, 10));
        // 3 removed, 1 and 5 installed, 2 overwritten.
        assert_eq!(changed, 4);
        assert_eq!(replica.sorted_vpns(), vec![1, 2, 5]);
        assert_eq!(replica.get(2).unwrap().frame, FrameId(99));
        let set = PtReplicaSet {
            replicas: vec![replica],
            stale: vec![Vec::new()],
        };
        assert!(set.agrees_with(NodeId(0), &primary));
    }

    #[test]
    fn sync_is_idempotent() {
        let primary = pt_with(&[4, 7]);
        let mut replica = pt_with(&[4, 7]);
        let changed = PtReplicaSet::sync_range(&mut replica, &primary, PageRange::new(0, 10));
        assert_eq!(changed, 0, "identical tables need no writes");
    }

    #[test]
    fn eager_propagate_hits_all_nodes() {
        let mut primary = PageTable::new();
        let mut set = PtReplicaSet::new(3, &primary);
        primary.map(8, Pte::present_rw(FrameId(1)));
        let changed = set.propagate(&primary, PageRange::new(8, 9));
        assert_eq!(changed, 3, "one write per replica");
        for n in 0..3 {
            assert!(set.agrees_with(NodeId(n), &primary));
        }
    }

    #[test]
    fn lazy_marks_then_reconciles_per_node() {
        let mut primary = PageTable::new();
        let mut set = PtReplicaSet::new(2, &primary);
        primary.map(3, Pte::present_rw(FrameId(1)));
        set.mark_stale(PageRange::new(3, 4));
        assert!(set.is_stale(NodeId(0)) && set.is_stale(NodeId(1)));
        assert!(!set.agrees_with(NodeId(0), &primary), "stale until walked");
        assert_eq!(set.reconcile(NodeId(0), &primary), 1);
        assert!(set.agrees_with(NodeId(0), &primary));
        assert!(!set.is_stale(NodeId(0)));
        assert!(set.is_stale(NodeId(1)), "other node still stale");
        assert_eq!(set.reconcile(NodeId(0), &primary), 0, "clean is free");
    }

    #[test]
    fn adjacent_stale_ranges_coalesce() {
        let mut set = PtReplicaSet::new(1, &PageTable::new());
        set.mark_stale(PageRange::new(0, 1));
        set.mark_stale(PageRange::new(1, 2));
        set.mark_stale(PageRange::new(2, 3));
        assert_eq!(set.stale[0].len(), 1);
        assert_eq!(set.stale[0][0], PageRange::new(0, 3));
        set.mark_stale(PageRange::new(10, 11));
        assert_eq!(set.stale[0].len(), 2, "disjoint ranges stay separate");
    }
}
