//! TLB shootdown accounting.
//!
//! The paper identifies TLB flushes as one of the expensive parts of both
//! migration paths: "the Translation Lookaside Buffer (TLB) has to be
//! flushed on all processors for each `mprotect`, while another flush is
//! already needed for migration" (§3.3). We do not simulate individual TLB
//! entries — only the *shootdown episodes* matter for the cost shapes — but
//! we track them per core so experiments can report how many flushes each
//! strategy triggered.

use numa_topology::CoreId;
use serde::{Deserialize, Serialize};

/// Shootdown bookkeeping for all cores of the machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tlb {
    /// Shootdowns *received* per core.
    received: Vec<u64>,
    /// Shootdown episodes *initiated* machine-wide.
    episodes: u64,
}

impl Tlb {
    /// TLB state for a machine with `cores` cores.
    pub fn new(cores: usize) -> Self {
        Tlb {
            received: vec![0; cores],
            episodes: 0,
        }
    }

    /// Record a shootdown initiated by `initiator` and delivered to every
    /// other core (the kernel broadcasts the invalidation IPI). Returns the
    /// number of remote cores that were interrupted.
    pub fn shootdown_all(&mut self, initiator: CoreId) -> u32 {
        self.episodes += 1;
        let mut hit = 0;
        for (i, r) in self.received.iter_mut().enumerate() {
            if i != initiator.index() {
                *r += 1;
                hit += 1;
            }
        }
        hit
    }

    /// Record a local-only invalidation (single-page `invlpg`; no IPIs).
    pub fn invalidate_local(&mut self, core: CoreId) {
        self.received[core.index()] += 1;
    }

    /// Shootdown episodes initiated so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Invalidations received by one core.
    pub fn received_by(&self, core: CoreId) -> u64 {
        self.received[core.index()]
    }

    /// Total invalidations received across all cores.
    pub fn received_total(&self) -> u64 {
        self.received.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shootdown_hits_everyone_but_initiator() {
        let mut t = Tlb::new(4);
        let hit = t.shootdown_all(CoreId(1));
        assert_eq!(hit, 3);
        assert_eq!(t.received_by(CoreId(0)), 1);
        assert_eq!(t.received_by(CoreId(1)), 0);
        assert_eq!(t.episodes(), 1);
        assert_eq!(t.received_total(), 3);
    }

    #[test]
    fn local_invalidate_is_quiet() {
        let mut t = Tlb::new(2);
        t.invalidate_local(CoreId(0));
        assert_eq!(t.episodes(), 0);
        assert_eq!(t.received_by(CoreId(0)), 1);
        assert_eq!(t.received_by(CoreId(1)), 0);
    }

    #[test]
    fn single_core_machine_shootdown_hits_nobody() {
        let mut t = Tlb::new(1);
        assert_eq!(t.shootdown_all(CoreId(0)), 0);
        assert_eq!(t.received_total(), 0);
    }
}
