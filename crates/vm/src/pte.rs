//! Page-table entries and their flag bits.
//!
//! The kernel next-touch design (paper §3.3, Figure 2) works entirely at
//! this level: `madvise` clears the access bits and sets a dedicated
//! next-touch flag in the PTE; the fault handler recognises the flag,
//! migrates the page, and restores the protection.

use crate::FrameId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// PTE flag bits.
///
/// A hand-rolled bitflag newtype (the workspace deliberately carries no
/// `bitflags` dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PteFlags(pub u8);

impl PteFlags {
    /// No flags.
    pub const EMPTY: PteFlags = PteFlags(0);
    /// The translation is valid and usable by the MMU.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Reads permitted.
    pub const READ: PteFlags = PteFlags(1 << 1);
    /// Writes permitted.
    pub const WRITE: PteFlags = PteFlags(1 << 2);
    /// Migrate-on-next-touch: our new flag (paper §3.3). The page keeps its
    /// frame but the access bits are cleared so the next touch faults.
    pub const NEXT_TOUCH: PteFlags = PteFlags(1 << 3);
    /// Head of a huge-page mapping (extension).
    pub const HUGE: PteFlags = PteFlags(1 << 4);
    /// This PTE points at a node-local replica of a read-only page
    /// (replication extension, paper §6 future work).
    pub const REPLICA: PteFlags = PteFlags(1 << 5);
    /// A transactional tier migration is in flight: the page exists
    /// non-exclusively in both tiers (`Pte::shadow` holds the in-progress
    /// destination copy) until the migration commits or aborts. The
    /// mapping stays fully usable — that is the point of the transactional
    /// scheme (Nomad, OSDI'23).
    pub const SHADOW: PteFlags = PteFlags(1 << 6);

    /// Does `self` contain every bit of `other`?
    pub fn contains(self, other: PteFlags) -> bool {
        (self.0 & other.0) == other.0
    }

    /// Any bit in common?
    pub fn intersects(self, other: PteFlags) -> bool {
        (self.0 & other.0) != 0
    }

    /// Is this the empty flag set?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: PteFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for PteFlags {
    type Output = PteFlags;
    fn bitand(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 & rhs.0)
    }
}

impl Not for PteFlags {
    type Output = PteFlags;
    fn not(self) -> PteFlags {
        PteFlags(!self.0)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for (bit, name) in [
            (PteFlags::PRESENT, "P"),
            (PteFlags::READ, "R"),
            (PteFlags::WRITE, "W"),
            (PteFlags::NEXT_TOUCH, "NT"),
            (PteFlags::HUGE, "H"),
            (PteFlags::REPLICA, "Repl"),
            (PteFlags::SHADOW, "Sh"),
        ] {
            if self.contains(bit) {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pte {
    /// The physical frame backing this page.
    pub frame: FrameId,
    /// In-progress tier-migration destination frame, valid while
    /// [`PteFlags::SHADOW`] is set: the copy being built in the other
    /// tier. Accesses are still served from `frame`; a commit flips
    /// `frame` to the shadow, an abort discards it.
    pub shadow: Option<FrameId>,
    /// Flag bits.
    pub flags: PteFlags,
}

impl Pte {
    /// A present, readable and writable mapping to `frame`.
    pub fn present_rw(frame: FrameId) -> Self {
        Pte {
            frame,
            shadow: None,
            flags: PteFlags::PRESENT | PteFlags::READ | PteFlags::WRITE,
        }
    }

    /// Can the MMU satisfy an access of the given kind without faulting?
    pub fn permits(&self, write: bool) -> bool {
        if !self.flags.contains(PteFlags::PRESENT) {
            return false;
        }
        if write {
            self.flags.contains(PteFlags::WRITE)
        } else {
            self.flags.contains(PteFlags::READ)
        }
    }

    /// Mark for migrate-on-next-touch: clear the access bits so the next
    /// touch faults, remember the intent in the NT flag (paper Fig. 2:
    /// "change PTE protection; set next-touch flag").
    pub fn mark_next_touch(&mut self) {
        self.flags = (self.flags & !(PteFlags::READ | PteFlags::WRITE)) | PteFlags::NEXT_TOUCH;
    }

    /// Clear the next-touch flag and restore full access (paper Fig. 2:
    /// "restore PTE protection; remove next-touch flag").
    pub fn clear_next_touch(&mut self) {
        self.flags = (self.flags & !PteFlags::NEXT_TOUCH)
            | PteFlags::READ
            | PteFlags::WRITE
            | PteFlags::PRESENT;
    }

    /// Is the migrate-on-next-touch flag set?
    pub fn is_next_touch(&self) -> bool {
        self.flags.contains(PteFlags::NEXT_TOUCH)
    }

    /// Attach an in-progress tier-migration copy. The mapping stays live;
    /// the page is now non-exclusive across both frames.
    pub fn set_shadow(&mut self, dst: FrameId) {
        self.shadow = Some(dst);
        self.flags |= PteFlags::SHADOW;
    }

    /// Commit the transactional migration: the shadow becomes the mapped
    /// frame. Returns the old (source) frame for the caller to free.
    /// Panics if no shadow is attached — a kernel-layer bug.
    pub fn commit_shadow(&mut self) -> FrameId {
        let dst = self.shadow.take().expect("commit without shadow copy");
        let src = self.frame;
        self.frame = dst;
        self.flags = self.flags & !PteFlags::SHADOW;
        src
    }

    /// Abort the transactional migration: the mapping is untouched.
    /// Returns the discarded shadow frame for the caller to free.
    pub fn abort_shadow(&mut self) -> FrameId {
        let dst = self.shadow.take().expect("abort without shadow copy");
        self.flags = self.flags & !PteFlags::SHADOW;
        dst
    }

    /// Is a transactional tier migration in flight on this page?
    pub fn has_shadow(&self) -> bool {
        self.flags.contains(PteFlags::SHADOW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_ops() {
        let f = PteFlags::PRESENT | PteFlags::READ;
        assert!(f.contains(PteFlags::PRESENT));
        assert!(f.contains(PteFlags::READ));
        assert!(!f.contains(PteFlags::WRITE));
        assert!(f.intersects(PteFlags::READ | PteFlags::WRITE));
        assert!(!f.intersects(PteFlags::WRITE));
        assert!(PteFlags::EMPTY.is_empty());
    }

    #[test]
    fn permits_checks_present_and_rw() {
        let mut pte = Pte::present_rw(FrameId(1));
        assert!(pte.permits(false));
        assert!(pte.permits(true));
        pte.flags = PteFlags::PRESENT | PteFlags::READ;
        assert!(pte.permits(false));
        assert!(!pte.permits(true));
        pte.flags = PteFlags::READ | PteFlags::WRITE; // not present
        assert!(!pte.permits(false));
    }

    #[test]
    fn next_touch_cycle() {
        let mut pte = Pte::present_rw(FrameId(7));
        pte.mark_next_touch();
        assert!(pte.is_next_touch());
        assert!(!pte.permits(false), "marked page must fault on read");
        assert!(!pte.permits(true), "marked page must fault on write");
        // Frame is retained while marked — the data is still there.
        assert_eq!(pte.frame, FrameId(7));
        pte.clear_next_touch();
        assert!(!pte.is_next_touch());
        assert!(pte.permits(true));
    }

    #[test]
    fn shadow_commit_and_abort() {
        let mut pte = Pte::present_rw(FrameId(1));
        pte.set_shadow(FrameId(9));
        assert!(pte.has_shadow());
        // The mapping stays fully usable while the copy is in flight.
        assert!(pte.permits(true));
        assert_eq!(pte.frame, FrameId(1));
        let old = pte.commit_shadow();
        assert_eq!(old, FrameId(1));
        assert_eq!(pte.frame, FrameId(9));
        assert!(!pte.has_shadow());
        assert!(pte.permits(true), "commit must not drop access bits");

        let mut pte = Pte::present_rw(FrameId(2));
        pte.set_shadow(FrameId(8));
        let discarded = pte.abort_shadow();
        assert_eq!(discarded, FrameId(8));
        assert_eq!(pte.frame, FrameId(2), "abort leaves the mapping untouched");
        assert!(!pte.has_shadow());
    }

    #[test]
    fn display_flags() {
        let pte = Pte::present_rw(FrameId(0));
        assert_eq!(pte.flags.to_string(), "P|R|W");
        assert_eq!(PteFlags::EMPTY.to_string(), "-");
        let mut marked = pte;
        marked.mark_next_touch();
        assert!(marked.flags.to_string().contains("NT"));
    }
}
