//! Simulated virtual memory.
//!
//! This crate models the slice of the Linux memory-management subsystem that
//! the paper's mechanisms live in: virtual address spaces made of VMAs,
//! software page tables whose PTEs carry protection and the new
//! *migrate-on-next-touch* flag (paper §3.3), per-NUMA-node physical frame
//! allocators, NUMA memory policies (first-touch / bind / interleave /
//! preferred), and a TLB-shootdown cost hook.
//!
//! The crate is purely *mechanism*: it holds state and enforces invariants
//! (no double-mapped frames, VMA ranges never overlap, page-table entries
//! only reference live frames). All *timing* lives in `numa-kernel`, which
//! manipulates these structures while charging virtual time.

pub mod addr;
pub mod frame;
pub mod page_table;
pub mod policy;
pub mod pte;
pub mod ptplace;
pub mod space;
pub mod tlb;
pub mod vma;

pub use addr::{PageRange, VirtAddr};
pub use frame::{Frame, FrameAllocator, FrameId, FrameLedger, PressureLevel};
pub use numa_stats::PtStats;
pub use page_table::{PageTable, PteRefMut};
pub use policy::MemPolicy;
pub use pte::{Pte, PteFlags};
pub use ptplace::{PtPlacement, PtReplicaSet, PtSyncMode};
pub use space::{AddressSpace, VmError};
pub use tlb::Tlb;
pub use vma::{Protection, Vma, VmaKind};

/// Base page size used throughout the simulation (4 kB, as on the paper's
/// machine). The cost model carries its own copy; they are asserted equal
/// when a machine is assembled.
pub const PAGE_SIZE: u64 = 4096;

/// Huge page size for the migration extension (2 MB).
pub const HUGE_PAGE_SIZE: u64 = 2 << 20;

/// Pages per huge page.
pub const PAGES_PER_HUGE: u64 = HUGE_PAGE_SIZE / PAGE_SIZE;
