//! The process address space: VMA bookkeeping plus the page table.
//!
//! `AddressSpace` enforces the structural invariants the kernel layer
//! relies on: VMAs never overlap, every mapped PTE lies inside some VMA,
//! and `mprotect` splits/merges VMAs exactly like Linux does.

use crate::addr::{PageRange, VirtAddr};
use crate::page_table::PageTable;
use crate::ptplace::{PtPlacement, PtReplicaSet, PtSyncMode};
use crate::vma::{Protection, Vma, VmaKind};
use crate::{MemPolicy, PAGE_SIZE};
use numa_topology::NodeId;
use std::collections::BTreeMap;

/// Errors from address-space operations (the `errno` analogues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Address not covered by any VMA (`EFAULT`).
    NoVma(VirtAddr),
    /// A request partially overlaps existing mappings (`EEXIST`).
    Overlap,
    /// Zero-length request (`EINVAL`).
    ZeroLength,
    /// Physical memory exhausted on the target node (`ENOMEM`).
    OutOfMemory,
    /// Operation not supported for this VMA kind (`EINVAL`), e.g. kernel
    /// next-touch on a shared mapping without the extension enabled.
    Unsupported(&'static str),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::NoVma(a) => write!(f, "no VMA covers {a}"),
            VmError::Overlap => write!(f, "mapping overlaps an existing VMA"),
            VmError::ZeroLength => write!(f, "zero-length request"),
            VmError::OutOfMemory => write!(f, "out of physical memory on target node"),
            VmError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for VmError {}

/// A process address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    /// VMAs keyed by start vpn.
    vmas: BTreeMap<u64, Vma>,
    /// The software page table.
    pub page_table: PageTable,
    /// Bump pointer for fresh mappings (in pages).
    next_map_vpn: u64,
    /// Process-default policy (`set_mempolicy`).
    default_policy: MemPolicy,
    /// Incremented on every VMA-structure change; the TLB model and the
    /// user-space runtime use it to detect staleness cheaply.
    generation: u64,
    /// Monotone: set once any VMA is remapped huge, never cleared. Lets
    /// address resolution skip the VMA walk in the (overwhelmingly common)
    /// all-4kB case; a stale `true` only disables that shortcut.
    has_huge: bool,
    /// Where this space's page table lives (`None` = placement untracked,
    /// the pre-subsystem behaviour: translation is free).
    pt_placement: Option<PtPlacement>,
    /// Replica update discipline when replicated.
    pt_sync_mode: PtSyncMode,
    /// Per-node replicas, present iff placement is
    /// [`PtPlacement::Replicated`].
    pt_replicas: Option<PtReplicaSet>,
}

impl AddressSpace {
    /// An empty address space. Mappings start at 4 GB to keep the low
    /// range free (and addresses visibly "pointer-like" in traces).
    pub fn new() -> Self {
        AddressSpace {
            vmas: BTreeMap::new(),
            page_table: PageTable::new(),
            next_map_vpn: (4u64 << 30) / PAGE_SIZE,
            default_policy: MemPolicy::FirstTouch,
            generation: 0,
            has_huge: false,
            pt_placement: None,
            pt_sync_mode: PtSyncMode::Eager,
            pt_replicas: None,
        }
    }

    /// Configure page-table placement. With [`PtPlacement::Replicated`],
    /// one replica per node is built from the current primary table and
    /// kept in sync per `mode`; with [`PtPlacement::SingleHome`] the table
    /// is pinned to that node and walks from elsewhere pay the distance.
    pub fn pt_configure(&mut self, placement: PtPlacement, mode: PtSyncMode, nodes: usize) {
        self.pt_sync_mode = mode;
        self.pt_replicas = match placement {
            PtPlacement::Replicated => Some(PtReplicaSet::new(nodes, &self.page_table)),
            PtPlacement::SingleHome(_) => None,
        };
        self.pt_placement = Some(placement);
    }

    /// Current page-table placement (`None` = subsystem disabled).
    pub fn pt_placement(&self) -> Option<PtPlacement> {
        self.pt_placement
    }

    /// Replica update discipline.
    pub fn pt_sync_mode(&self) -> PtSyncMode {
        self.pt_sync_mode
    }

    /// Re-home a single-homed page table (numaPTE-style migration when the
    /// owning thread moves). No-op under any other placement.
    pub fn pt_set_home(&mut self, node: NodeId) {
        if let Some(PtPlacement::SingleHome(_)) = self.pt_placement {
            self.pt_placement = Some(PtPlacement::SingleHome(node));
        }
    }

    /// Record that the primary table changed over `range`. Under eager
    /// replication the change is written through to every replica and the
    /// number of PTEs written is returned (the caller charges for them);
    /// under lazy replication the range is marked stale everywhere and 0
    /// is returned. Without replicas this is free and returns 0.
    pub fn pt_note_update(&mut self, range: PageRange) -> u64 {
        let Some(replicas) = self.pt_replicas.as_mut() else {
            return 0;
        };
        match self.pt_sync_mode {
            PtSyncMode::Eager => replicas.propagate(&self.page_table, range),
            PtSyncMode::Lazy => {
                replicas.mark_stale(range);
                0
            }
        }
    }

    /// Does `node`'s replica need reconciling before a walk from there?
    pub fn pt_node_is_stale(&self, node: NodeId) -> bool {
        self.pt_replicas.as_ref().is_some_and(|r| r.is_stale(node))
    }

    /// Reconcile `node`'s replica with the primary (lazy mode, on the
    /// first walk from a node after an update). Returns PTEs written.
    pub fn pt_sync_node(&mut self, node: NodeId) -> u64 {
        match self.pt_replicas.as_mut() {
            Some(r) => r.reconcile(node, &self.page_table),
            None => 0,
        }
    }

    /// The replica set, when replicated (tests and invariant checks).
    pub fn pt_replicas(&self) -> Option<&PtReplicaSet> {
        self.pt_replicas.as_ref()
    }

    /// Mark the VMA covering `addr` as huge-mapped. The dedicated entry
    /// point (rather than flipping `Vma::huge` through `find_vma_mut`)
    /// keeps the space's huge-VMA knowledge accurate.
    pub fn set_vma_huge(&mut self, addr: VirtAddr) -> Result<(), VmError> {
        let vma = self.find_vma_mut(addr).ok_or(VmError::NoVma(addr))?;
        vma.huge = true;
        let range = vma.range;
        self.has_huge = true;
        // Shrink the VMA's still-empty reservation to one record per huge
        // page: only heads ever carry entries in a huge VMA, so the other
        // 511 slots per 2 MB would be dead weight. Best-effort — a
        // non-huge-aligned or already-populated extent stays base-grain.
        self.page_table.convert_range_to_huge(range);
        self.generation += 1;
        Ok(())
    }

    /// True when any VMA may be huge-mapped (conservative: never reset).
    pub fn has_huge_vmas(&self) -> bool {
        self.has_huge
    }

    /// Map `len` bytes of fresh memory and return its base address.
    ///
    /// Pages are *not* populated — like real `mmap`, physical frames appear
    /// lazily on first touch, which is exactly the laziness the first-touch
    /// policy exploits (paper §2.2).
    pub fn mmap(
        &mut self,
        len: u64,
        prot: Protection,
        kind: VmaKind,
        policy: MemPolicy,
    ) -> Result<VirtAddr, VmError> {
        if len == 0 {
            return Err(VmError::ZeroLength);
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let start_vpn = self.next_map_vpn;
        // One-page guard gap between mappings catches off-by-one walkers.
        self.next_map_vpn += pages + 1;
        let vma = Vma {
            range: PageRange::new(start_vpn, start_vpn + pages),
            prot,
            kind,
            policy,
            huge: false,
            tag: 0,
        };
        self.insert_vma(vma)?;
        Ok(VirtAddr::from_vpn(start_vpn))
    }

    /// Remove the mapping that starts exactly at `addr`, returning the
    /// frames that were backing it so the caller can free them.
    pub fn munmap(&mut self, addr: VirtAddr) -> Result<Vec<crate::FrameId>, VmError> {
        let vpn = addr.vpn();
        let vma = self.vmas.remove(&vpn).ok_or(VmError::NoVma(addr))?;
        // Release the VMA's PTE slab in one pass; entries come back in
        // ascending vpn order, exactly as the old per-page unmap loop
        // produced them.
        let frames = self
            .page_table
            .release_range(vma.range)
            .into_iter()
            .map(|pte| pte.frame)
            .collect();
        // Replicas must drop the same entries; munmap is not on any timed
        // path, so the write-through count is not charged anywhere.
        self.pt_note_update(vma.range);
        self.generation += 1;
        Ok(frames)
    }

    /// Insert a fully-formed VMA, rejecting overlaps.
    pub fn insert_vma(&mut self, vma: Vma) -> Result<(), VmError> {
        if vma.range.is_empty() {
            return Err(VmError::ZeroLength);
        }
        // Check the neighbours for overlap.
        if let Some((_, prev)) = self.vmas.range(..=vma.range.start_vpn).next_back() {
            if prev.range.end_vpn > vma.range.start_vpn {
                return Err(VmError::Overlap);
            }
        }
        if let Some((_, next)) = self.vmas.range(vma.range.start_vpn..).next() {
            if next.range.start_vpn < vma.range.end_vpn {
                return Err(VmError::Overlap);
            }
        }
        if vma.huge {
            self.has_huge = true;
        }
        // Pre-size the VMA's dense PTE slab so every later fault is an
        // indexed store, never a structural insertion.
        self.page_table.reserve_range(vma.range);
        self.vmas.insert(vma.range.start_vpn, vma);
        self.generation += 1;
        Ok(())
    }

    /// The VMA covering `addr`, if any.
    pub fn find_vma(&self, addr: VirtAddr) -> Option<&Vma> {
        let vpn = addr.vpn();
        self.vmas
            .range(..=vpn)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(vpn))
    }

    /// Mutable VMA lookup by covered address.
    pub fn find_vma_mut(&mut self, addr: VirtAddr) -> Option<&mut Vma> {
        let vpn = addr.vpn();
        self.vmas
            .range_mut(..=vpn)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(vpn))
    }

    /// All VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Change protection over an arbitrary page range, splitting boundary
    /// VMAs as needed and merging identical neighbours afterwards —
    /// the full `mprotect` VMA dance. Returns the number of pages whose
    /// protection changed. Errors if any page in the range is unmapped
    /// (like `mprotect` returning `ENOMEM`).
    pub fn mprotect(&mut self, range: PageRange, prot: Protection) -> Result<u64, VmError> {
        if range.is_empty() {
            return Ok(0);
        }
        self.check_fully_mapped(range)?;
        self.split_boundaries(range);
        let mut changed = 0;
        let keys: Vec<u64> = self
            .vmas
            .range(range.start_vpn..range.end_vpn)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            let vma = self.vmas.get_mut(&k).expect("key just listed");
            debug_assert!(vma.range.end_vpn <= range.end_vpn, "boundary was split");
            if vma.prot != prot {
                vma.prot = prot;
                changed += vma.range.pages();
            }
        }
        self.merge_around(range);
        self.generation += 1;
        Ok(changed)
    }

    /// Apply `f` to every VMA overlapping `range`, splitting at the range
    /// boundaries first so the closure only ever sees fully-covered VMAs.
    /// The generic machinery behind `madvise` and `mbind`.
    pub fn for_each_vma_in<F: FnMut(&mut Vma)>(
        &mut self,
        range: PageRange,
        mut f: F,
    ) -> Result<(), VmError> {
        if range.is_empty() {
            return Ok(());
        }
        self.check_fully_mapped(range)?;
        self.split_boundaries(range);
        let keys: Vec<u64> = self
            .vmas
            .range(range.start_vpn..range.end_vpn)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            f(self.vmas.get_mut(&k).expect("key just listed"));
        }
        self.merge_around(range);
        self.generation += 1;
        Ok(())
    }

    /// Set the process-default memory policy (`set_mempolicy`).
    pub fn set_default_policy(&mut self, policy: MemPolicy) {
        self.default_policy = policy;
    }

    /// The process-default memory policy.
    pub fn default_policy(&self) -> &MemPolicy {
        &self.default_policy
    }

    /// Structure-change generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Verify every page of `range` lies in some VMA.
    fn check_fully_mapped(&self, range: PageRange) -> Result<(), VmError> {
        let mut vpn = range.start_vpn;
        while vpn < range.end_vpn {
            match self.find_vma(VirtAddr::from_vpn(vpn)) {
                Some(v) => vpn = v.range.end_vpn,
                None => return Err(VmError::NoVma(VirtAddr::from_vpn(vpn))),
            }
        }
        Ok(())
    }

    /// Split VMAs so that `range.start_vpn` and `range.end_vpn` fall on
    /// VMA boundaries.
    fn split_boundaries(&mut self, range: PageRange) {
        for edge in [range.start_vpn, range.end_vpn] {
            let candidate = self
                .vmas
                .range(..edge)
                .next_back()
                .map(|(k, v)| (*k, v.range.end_vpn));
            if let Some((key, end)) = candidate {
                if key < edge && edge < end {
                    let mut left = self.vmas.remove(&key).expect("candidate exists");
                    let right = left.split_at(edge);
                    self.vmas.insert(left.range.start_vpn, left);
                    self.vmas.insert(right.range.start_vpn, right);
                }
            }
        }
    }

    /// Merge identical adjacent VMAs around `range` (keeps VMA counts from
    /// growing without bound under repeated mark/restore cycles, just like
    /// the kernel's `vma_merge`).
    fn merge_around(&mut self, range: PageRange) {
        // Start one VMA before the affected range (it may merge with the
        // first changed VMA) and sweep right, folding every mergeable
        // neighbour into the current VMA, until past the range end.
        let mut cur = self
            .vmas
            .range(..range.start_vpn)
            .next_back()
            .map(|(k, _)| *k)
            .or_else(|| self.vmas.range(range.start_vpn..).next().map(|(k, _)| *k));
        while let Some(cur_key) = cur {
            let Some(cur_vma) = self.vmas.get(&cur_key) else {
                break;
            };
            if cur_vma.range.start_vpn > range.end_vpn {
                break;
            }
            let next_key = self.vmas.range(cur_key + 1..).next().map(|(k, _)| *k);
            let Some(next_key) = next_key else {
                break;
            };
            let next_vma = self.vmas.get(&next_key).expect("key just listed");
            if cur_vma.can_merge(next_vma) {
                let absorbed = self.vmas.remove(&next_key).expect("checked above");
                let cur_vma = self.vmas.get_mut(&cur_key).expect("checked above");
                cur_vma.range = PageRange::new(cur_vma.range.start_vpn, absorbed.range.end_vpn);
                // Stay on cur_key: it may merge with the new next too.
            } else {
                cur = Some(next_key);
            }
        }
    }

    /// Debug invariant: VMAs are sorted, non-overlapping, and every mapped
    /// PTE lies inside a VMA. Called by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end = 0u64;
        for (k, v) in &self.vmas {
            if *k != v.range.start_vpn {
                return Err(format!("vma key {k} != start {}", v.range.start_vpn));
            }
            if v.range.is_empty() {
                return Err(format!("empty vma at {k}"));
            }
            if v.range.start_vpn < prev_end {
                return Err(format!("vma at {k} overlaps previous (end {prev_end})"));
            }
            prev_end = v.range.end_vpn;
        }
        for (vpn, _) in self.page_table.iter() {
            if self.find_vma(VirtAddr::from_vpn(vpn)).is_none() {
                return Err(format!("pte for vpn {vpn} outside any vma"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon_space_with(len_pages: u64) -> (AddressSpace, VirtAddr) {
        let mut s = AddressSpace::new();
        let a = s
            .mmap(
                len_pages * PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        (s, a)
    }

    #[test]
    fn mmap_creates_unpopulated_vma() {
        let (s, a) = anon_space_with(8);
        assert_eq!(s.vma_count(), 1);
        let v = s.find_vma(a).unwrap();
        assert_eq!(v.range.pages(), 8);
        assert!(s.page_table.is_empty(), "mmap must not populate frames");
        s.check_invariants().unwrap();
    }

    #[test]
    fn mmap_zero_len_rejected() {
        let mut s = AddressSpace::new();
        assert_eq!(
            s.mmap(
                0,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::FirstTouch
            ),
            Err(VmError::ZeroLength)
        );
    }

    #[test]
    fn separate_mmaps_do_not_touch() {
        let mut s = AddressSpace::new();
        let a = s
            .mmap(
                PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        let b = s
            .mmap(
                PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        assert!(b.vpn() > a.vpn() + 1, "guard gap expected");
        s.check_invariants().unwrap();
    }

    #[test]
    fn find_vma_misses_outside() {
        let (s, a) = anon_space_with(4);
        assert!(s.find_vma(a).is_some());
        assert!(s.find_vma(a + 4 * PAGE_SIZE).is_none());
        assert!(s.find_vma(VirtAddr(0)).is_none());
    }

    #[test]
    fn mprotect_middle_splits_into_three() {
        let (mut s, a) = anon_space_with(10);
        let base = a.vpn();
        let changed = s
            .mprotect(PageRange::new(base + 3, base + 6), Protection::None)
            .unwrap();
        assert_eq!(changed, 3);
        assert_eq!(s.vma_count(), 3);
        assert_eq!(s.find_vma(a).unwrap().prot, Protection::ReadWrite);
        assert_eq!(
            s.find_vma(VirtAddr::from_vpn(base + 4)).unwrap().prot,
            Protection::None
        );
        assert_eq!(
            s.find_vma(VirtAddr::from_vpn(base + 7)).unwrap().prot,
            Protection::ReadWrite
        );
        s.check_invariants().unwrap();
    }

    #[test]
    fn mprotect_restore_merges_back() {
        let (mut s, a) = anon_space_with(10);
        let base = a.vpn();
        s.mprotect(PageRange::new(base + 3, base + 6), Protection::None)
            .unwrap();
        assert_eq!(s.vma_count(), 3);
        s.mprotect(PageRange::new(base + 3, base + 6), Protection::ReadWrite)
            .unwrap();
        assert_eq!(s.vma_count(), 1, "identical neighbours must merge");
        s.check_invariants().unwrap();
    }

    #[test]
    fn mprotect_unmapped_errors() {
        let (mut s, a) = anon_space_with(2);
        let base = a.vpn();
        let err = s
            .mprotect(PageRange::new(base, base + 5), Protection::None)
            .unwrap_err();
        assert!(matches!(err, VmError::NoVma(_)));
    }

    #[test]
    fn mprotect_noop_counts_zero() {
        let (mut s, a) = anon_space_with(4);
        let base = a.vpn();
        let changed = s
            .mprotect(PageRange::new(base, base + 4), Protection::ReadWrite)
            .unwrap();
        assert_eq!(changed, 0);
        assert_eq!(s.vma_count(), 1);
    }

    #[test]
    fn for_each_vma_in_tags_subrange() {
        let (mut s, a) = anon_space_with(8);
        let base = a.vpn();
        s.for_each_vma_in(PageRange::new(base + 2, base + 4), |v| v.tag = 7)
            .unwrap();
        assert_eq!(s.find_vma(VirtAddr::from_vpn(base + 2)).unwrap().tag, 7);
        assert_eq!(s.find_vma(VirtAddr::from_vpn(base)).unwrap().tag, 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn munmap_returns_backed_frames() {
        use crate::pte::Pte;
        use crate::FrameId;
        let (mut s, a) = anon_space_with(3);
        let base = a.vpn();
        s.page_table.map(base, Pte::present_rw(FrameId(11)));
        s.page_table.map(base + 2, Pte::present_rw(FrameId(12)));
        let mut frames = s.munmap(a).unwrap();
        frames.sort();
        assert_eq!(frames, vec![FrameId(11), FrameId(12)]);
        assert_eq!(s.vma_count(), 0);
        assert!(s.page_table.is_empty());
    }

    #[test]
    fn munmap_unknown_errors() {
        let mut s = AddressSpace::new();
        assert!(matches!(s.munmap(VirtAddr(12345)), Err(VmError::NoVma(_))));
    }

    #[test]
    fn generation_bumps_on_structure_change() {
        let (mut s, a) = anon_space_with(4);
        let g0 = s.generation();
        s.mprotect(PageRange::new(a.vpn(), a.vpn() + 1), Protection::None)
            .unwrap();
        assert!(s.generation() > g0);
    }

    #[test]
    fn overlapping_insert_rejected() {
        let (mut s, a) = anon_space_with(4);
        let v = Vma::anon(PageRange::new(a.vpn() + 1, a.vpn() + 2));
        assert_eq!(s.insert_vma(v), Err(VmError::Overlap));
    }
}
