//! Physical frames and per-node frame allocators.
//!
//! Each NUMA node owns a pool of 4 kB frames. Frames carry a `content_tag`
//! so tests can verify that migration moves *contents*, not just mappings —
//! the kernel copies the tag from the old frame to the new one exactly where
//! the real kernel would call `copy_highpage`.

use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a physical frame (unique machine-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrameId(pub u64);

/// A live physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The NUMA node whose memory bank holds this frame.
    pub node: NodeId,
    /// Opaque content identity; preserved across migrations.
    pub content_tag: u64,
    /// Write generation: bumped on every simulated write to the frame.
    /// The transactional tier-migration path snapshots this before
    /// copying and re-checks it at commit — a mismatch means a concurrent
    /// writer dirtied the page and the copy must be aborted (the Nomad
    /// consistency check).
    pub write_gen: u64,
}

/// Machine-wide frame allocator with per-node accounting.
///
/// Frame ids are never reused within one simulation, which turns
/// use-after-free bugs in the kernel layer into loud lookup failures
/// instead of silent aliasing. Because ids are dense and monotone, the
/// frame table is index-addressed storage (`Vec<Option<Frame>>` slot per
/// id ever issued): every lookup on the migration hot path is one bounds
/// check and one indexed load, and a freed slot stays `None` forever so
/// use-after-free still fails loudly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameAllocator {
    frames: Vec<Option<Frame>>,
    next_id: u64,
    next_content: u64,
    /// Frames currently live per node.
    live_per_node: Vec<u64>,
    /// Capacity per node in frames.
    capacity_per_node: Vec<u64>,
    allocated_total: u64,
    freed_total: u64,
}

impl FrameAllocator {
    /// An allocator for `node_count` nodes with `capacity_frames` frames
    /// each.
    pub fn new(node_count: usize, capacity_frames: u64) -> Self {
        Self::with_capacities(vec![capacity_frames; node_count])
    }

    /// An allocator with a distinct capacity per node — tiered machines
    /// have small fast banks and large slow ones.
    pub fn with_capacities(capacity_per_node: Vec<u64>) -> Self {
        FrameAllocator {
            frames: Vec::new(),
            next_id: 0,
            next_content: 0,
            live_per_node: vec![0; capacity_per_node.len()],
            capacity_per_node,
            allocated_total: 0,
            freed_total: 0,
        }
    }

    /// Allocate a fresh zeroed frame on `node`. Returns `None` when the
    /// node's bank is full (the simulated analogue of waking kswapd —
    /// experiments size their buffers to never hit this, but the invariant
    /// is enforced).
    pub fn alloc(&mut self, node: NodeId) -> Option<FrameId> {
        let n = node.index();
        if self.live_per_node[n] >= self.capacity_per_node[n] {
            return None;
        }
        let id = FrameId(self.next_id);
        self.next_id += 1;
        let tag = self.next_content;
        self.next_content += 1;
        debug_assert_eq!(self.frames.len() as u64, id.0, "ids are dense");
        self.frames.push(Some(Frame {
            node,
            content_tag: tag,
            write_gen: 0,
        }));
        self.live_per_node[n] += 1;
        self.allocated_total += 1;
        Some(id)
    }

    /// Free a frame. Panics on double-free or unknown frame — both are
    /// kernel-layer bugs, never workload conditions.
    pub fn free(&mut self, id: FrameId) {
        let f = self
            .frames
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("free of unknown frame {id:?}"));
        self.live_per_node[f.node.index()] -= 1;
        self.freed_total += 1;
    }

    /// Look up a live frame.
    #[inline]
    pub fn get(&self, id: FrameId) -> Option<&Frame> {
        self.frames.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// The node a live frame resides on. Panics on unknown frames.
    #[inline]
    pub fn node_of(&self, id: FrameId) -> NodeId {
        self.get(id)
            .unwrap_or_else(|| panic!("lookup of unknown frame {id:?}"))
            .node
    }

    /// Copy contents from `src` to `dst` (the `copy_highpage` analogue).
    pub fn copy_contents(&mut self, src: FrameId, dst: FrameId) {
        let tag = self
            .get(src)
            .unwrap_or_else(|| panic!("copy from unknown frame {src:?}"))
            .content_tag;
        self.frames
            .get_mut(dst.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("copy to unknown frame {dst:?}"))
            .content_tag = tag;
    }

    /// Record a write to a live frame, bumping its write generation.
    /// Panics on unknown frames.
    #[inline]
    pub fn note_write(&mut self, id: FrameId) {
        self.frames
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("write to unknown frame {id:?}"))
            .write_gen += 1;
    }

    /// Current write generation of a live frame. Panics on unknown frames.
    #[inline]
    pub fn write_gen(&self, id: FrameId) -> u64 {
        self.get(id)
            .unwrap_or_else(|| panic!("lookup of unknown frame {id:?}"))
            .write_gen
    }

    /// Frames currently live on `node`.
    pub fn live_on(&self, node: NodeId) -> u64 {
        self.live_per_node[node.index()]
    }

    /// Capacity of a node's bank, in frames.
    pub fn capacity_of(&self, node: NodeId) -> u64 {
        self.capacity_per_node[node.index()]
    }

    /// Free frames remaining on a node.
    pub fn free_on(&self, node: NodeId) -> u64 {
        self.capacity_per_node[node.index()] - self.live_per_node[node.index()]
    }

    /// Total frames ever allocated.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Total frames ever freed.
    pub fn freed_total(&self) -> u64 {
        self.freed_total
    }

    /// Frames live right now, machine-wide.
    pub fn live_total(&self) -> u64 {
        self.allocated_total - self.freed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut fa = FrameAllocator::new(2, 100);
        let a = fa.alloc(NodeId(0)).unwrap();
        let b = fa.alloc(NodeId(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.live_on(NodeId(0)), 1);
        assert_eq!(fa.live_on(NodeId(1)), 1);
        fa.free(a);
        assert_eq!(fa.live_on(NodeId(0)), 0);
        assert_eq!(fa.allocated_total(), 2);
        assert_eq!(fa.freed_total(), 1);
        assert_eq!(fa.live_total(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut fa = FrameAllocator::new(1, 2);
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_none());
        // Freeing makes room again.
        let id = FrameId(0);
        fa.free(id);
        assert!(fa.alloc(NodeId(0)).is_some());
    }

    #[test]
    fn content_tags_unique_and_copyable() {
        let mut fa = FrameAllocator::new(2, 10);
        let a = fa.alloc(NodeId(0)).unwrap();
        let b = fa.alloc(NodeId(1)).unwrap();
        let tag_a = fa.get(a).unwrap().content_tag;
        let tag_b = fa.get(b).unwrap().content_tag;
        assert_ne!(tag_a, tag_b);
        fa.copy_contents(a, b);
        assert_eq!(fa.get(b).unwrap().content_tag, tag_a);
        // Source unchanged.
        assert_eq!(fa.get(a).unwrap().content_tag, tag_a);
    }

    #[test]
    fn write_generation_tracking() {
        let mut fa = FrameAllocator::new(1, 10);
        let f = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.write_gen(f), 0);
        fa.note_write(f);
        fa.note_write(f);
        assert_eq!(fa.write_gen(f), 2);
        // Content copies do not count as writes to the *source*.
        let g = fa.alloc(NodeId(0)).unwrap();
        fa.copy_contents(f, g);
        assert_eq!(fa.write_gen(f), 2);
    }

    #[test]
    fn per_node_capacities() {
        let mut fa = FrameAllocator::with_capacities(vec![1, 3]);
        assert_eq!(fa.capacity_of(NodeId(0)), 1);
        assert_eq!(fa.capacity_of(NodeId(1)), 3);
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_none(), "fast bank exhausted");
        assert_eq!(fa.free_on(NodeId(0)), 0);
        assert_eq!(fa.free_on(NodeId(1)), 3);
        assert!(fa.alloc(NodeId(1)).is_some());
    }

    #[test]
    fn node_of_live_frame() {
        let mut fa = FrameAllocator::new(3, 10);
        let f = fa.alloc(NodeId(2)).unwrap();
        assert_eq!(fa.node_of(f), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "unknown frame")]
    fn double_free_panics() {
        let mut fa = FrameAllocator::new(1, 10);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.free(f);
        fa.free(f);
    }

    #[test]
    fn ids_never_reused() {
        let mut fa = FrameAllocator::new(1, 10);
        let a = fa.alloc(NodeId(0)).unwrap();
        fa.free(a);
        let b = fa.alloc(NodeId(0)).unwrap();
        assert_ne!(a, b);
    }
}
