//! Physical frames and per-node frame allocators.
//!
//! Each NUMA node owns a pool of 4 kB frames. Frames carry a `content_tag`
//! so tests can verify that migration moves *contents*, not just mappings —
//! the kernel copies the tag from the old frame to the new one exactly where
//! the real kernel would call `copy_highpage`.

use numa_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a physical frame (unique machine-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrameId(pub u64);

/// Per-node memory-pressure level, derived from the free-frame count
/// against the node's low/min watermarks (the Linux zone-watermark
/// analogue). With watermarks unset (both zero) a node is `Normal` until
/// it is completely full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PressureLevel {
    /// Free frames above the low watermark.
    Normal,
    /// Free frames at or below the low watermark: background reclaim
    /// (`kreclaimd`) should start demoting cold pages.
    Low,
    /// Free frames at or below the min watermark: allocating threads
    /// enter direct reclaim.
    Min,
}

impl PressureLevel {
    /// Stable short name (trace events, JSON output).
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Low => "low",
            PressureLevel::Min => "min",
        }
    }
}

/// A live physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The NUMA node whose memory bank holds this frame.
    pub node: NodeId,
    /// Opaque content identity; preserved across migrations.
    pub content_tag: u64,
    /// Write generation: bumped on every simulated write to the frame.
    /// The transactional tier-migration path snapshots this before
    /// copying and re-checks it at commit — a mismatch means a concurrent
    /// writer dirtied the page and the copy must be aborted (the Nomad
    /// consistency check).
    pub write_gen: u64,
}

/// Machine-wide frame allocator with per-node accounting.
///
/// Frame ids are never reused within one simulation, which turns
/// use-after-free bugs in the kernel layer into loud lookup failures
/// instead of silent aliasing. Because ids are dense and monotone, the
/// frame table is index-addressed storage (`Vec<Option<Frame>>` slot per
/// id ever issued): every lookup on the migration hot path is one bounds
/// check and one indexed load, and a freed slot stays `None` forever so
/// use-after-free still fails loudly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameAllocator {
    frames: Vec<Option<Frame>>,
    next_id: u64,
    next_content: u64,
    /// Frames currently live per node.
    live_per_node: Vec<u64>,
    /// Capacity per node in frames.
    capacity_per_node: Vec<u64>,
    allocated_total: u64,
    freed_total: u64,
    /// Low watermark per node, in free frames (0 = unset).
    watermark_low: Vec<u64>,
    /// Min watermark per node, in free frames (0 = unset).
    watermark_min: Vec<u64>,
    /// Nodes marked unallocatable by hot-remove. Resident frames stay
    /// valid (reads/frees still work) — only new allocations are refused.
    offline: Vec<bool>,
    /// Last pressure level observed by [`FrameAllocator::probe_pressure`]
    /// per node, for transition detection.
    last_pressure: Vec<PressureLevel>,
    /// Any watermark configured at all? Lets the pressure paths stay one
    /// branch when the subsystem is unused.
    watermarked: bool,
}

impl FrameAllocator {
    /// An allocator for `node_count` nodes with `capacity_frames` frames
    /// each.
    pub fn new(node_count: usize, capacity_frames: u64) -> Self {
        Self::with_capacities(vec![capacity_frames; node_count])
    }

    /// An allocator with a distinct capacity per node — tiered machines
    /// have small fast banks and large slow ones.
    pub fn with_capacities(capacity_per_node: Vec<u64>) -> Self {
        let nodes = capacity_per_node.len();
        FrameAllocator {
            frames: Vec::new(),
            next_id: 0,
            next_content: 0,
            live_per_node: vec![0; nodes],
            capacity_per_node,
            allocated_total: 0,
            freed_total: 0,
            watermark_low: vec![0; nodes],
            watermark_min: vec![0; nodes],
            offline: vec![false; nodes],
            last_pressure: vec![PressureLevel::Normal; nodes],
            watermarked: false,
        }
    }

    /// Allocate a fresh zeroed frame on `node`. Returns `None` when the
    /// node's bank is full or the node is offline (the simulated analogue
    /// of a zone with no eligible free pages — the kernel layer's
    /// zonelist/reclaim/OOM machinery decides what happens next).
    pub fn alloc(&mut self, node: NodeId) -> Option<FrameId> {
        let n = node.index();
        if self.live_per_node[n] >= self.capacity_per_node[n] || self.offline[n] {
            return None;
        }
        let id = FrameId(self.next_id);
        self.next_id += 1;
        let tag = self.next_content;
        self.next_content += 1;
        debug_assert_eq!(self.frames.len() as u64, id.0, "ids are dense");
        self.frames.push(Some(Frame {
            node,
            content_tag: tag,
            write_gen: 0,
        }));
        self.live_per_node[n] += 1;
        self.allocated_total += 1;
        Some(id)
    }

    /// Free a frame. Panics on double-free or unknown frame — both are
    /// kernel-layer bugs, never workload conditions.
    pub fn free(&mut self, id: FrameId) {
        let f = self
            .frames
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("free of unknown frame {id:?}"));
        self.live_per_node[f.node.index()] -= 1;
        self.freed_total += 1;
    }

    /// Look up a live frame.
    #[inline]
    pub fn get(&self, id: FrameId) -> Option<&Frame> {
        self.frames.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// The node a live frame resides on. Panics on unknown frames.
    #[inline]
    pub fn node_of(&self, id: FrameId) -> NodeId {
        self.get(id)
            .unwrap_or_else(|| panic!("lookup of unknown frame {id:?}"))
            .node
    }

    /// Copy contents from `src` to `dst` (the `copy_highpage` analogue).
    pub fn copy_contents(&mut self, src: FrameId, dst: FrameId) {
        let tag = self
            .get(src)
            .unwrap_or_else(|| panic!("copy from unknown frame {src:?}"))
            .content_tag;
        self.frames
            .get_mut(dst.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("copy to unknown frame {dst:?}"))
            .content_tag = tag;
    }

    /// Record a write to a live frame, bumping its write generation.
    /// Panics on unknown frames.
    #[inline]
    pub fn note_write(&mut self, id: FrameId) {
        self.frames
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("write to unknown frame {id:?}"))
            .write_gen += 1;
    }

    /// Current write generation of a live frame. Panics on unknown frames.
    #[inline]
    pub fn write_gen(&self, id: FrameId) -> u64 {
        self.get(id)
            .unwrap_or_else(|| panic!("lookup of unknown frame {id:?}"))
            .write_gen
    }

    /// Frames currently live on `node`.
    pub fn live_on(&self, node: NodeId) -> u64 {
        self.live_per_node[node.index()]
    }

    /// Capacity of a node's bank, in frames.
    pub fn capacity_of(&self, node: NodeId) -> u64 {
        self.capacity_per_node[node.index()]
    }

    /// Free frames remaining on a node.
    pub fn free_on(&self, node: NodeId) -> u64 {
        self.capacity_per_node[node.index()] - self.live_per_node[node.index()]
    }

    /// Total frames ever allocated.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Total frames ever freed.
    pub fn freed_total(&self) -> u64 {
        self.freed_total
    }

    /// Frames live right now, machine-wide.
    pub fn live_total(&self) -> u64 {
        self.allocated_total - self.freed_total
    }

    /// Configure the low/min watermarks of `node`, in free frames.
    /// `min` must not exceed `low` (a min reserve inside the low band,
    /// like Linux's `min < low < high` ordering).
    pub fn set_watermarks(&mut self, node: NodeId, low: u64, min: u64) {
        assert!(min <= low, "min watermark {min} must not exceed low {low}");
        let n = node.index();
        self.watermark_low[n] = low;
        self.watermark_min[n] = min;
        self.watermarked =
            self.watermark_low.iter().any(|&w| w > 0) || self.watermark_min.iter().any(|&w| w > 0);
    }

    /// Is any watermark configured on any node? One branch for the
    /// pressure-probe call sites to skip all bookkeeping in ordinary runs.
    #[inline]
    pub fn watermarked(&self) -> bool {
        self.watermarked
    }

    /// Low watermark of `node`, in free frames.
    pub fn watermark_low(&self, node: NodeId) -> u64 {
        self.watermark_low[node.index()]
    }

    /// Min watermark of `node`, in free frames.
    pub fn watermark_min(&self, node: NodeId) -> u64 {
        self.watermark_min[node.index()]
    }

    /// Current pressure level of `node` from its free-frame count.
    pub fn pressure_of(&self, node: NodeId) -> PressureLevel {
        let n = node.index();
        let free = self.capacity_per_node[n] - self.live_per_node[n];
        if free <= self.watermark_min[n] {
            PressureLevel::Min
        } else if free <= self.watermark_low[n] {
            PressureLevel::Low
        } else {
            PressureLevel::Normal
        }
    }

    /// Recompute `node`'s pressure level and compare against the last
    /// probe: `Some(new_level)` on a transition, `None` when unchanged.
    /// Callers (the kernel's allocation and reclaim paths) turn
    /// transitions into counters and trace events; probing is explicit so
    /// the hot allocation path pays nothing when watermarks are unset.
    pub fn probe_pressure(&mut self, node: NodeId) -> Option<PressureLevel> {
        let level = self.pressure_of(node);
        let slot = &mut self.last_pressure[node.index()];
        if *slot == level {
            None
        } else {
            *slot = level;
            Some(level)
        }
    }

    /// Mark `node` unallocatable (hot-remove). Resident frames stay live
    /// and can still be read, copied and freed; only allocation is
    /// refused. Idempotent.
    pub fn set_offline(&mut self, node: NodeId) {
        self.offline[node.index()] = true;
    }

    /// Bring `node` back online. Idempotent.
    pub fn set_online(&mut self, node: NodeId) {
        self.offline[node.index()] = false;
    }

    /// Is `node` marked offline?
    pub fn is_offline(&self, node: NodeId) -> bool {
        self.offline[node.index()]
    }

    /// Replace `node`'s bank capacity outright. Panics if the new
    /// capacity would strand already-live frames. The shard orchestrator
    /// uses this to start each tenant with a small granted slice of the
    /// machine-wide pool instead of the preset's full bank.
    pub fn set_capacity(&mut self, node: NodeId, frames: u64) {
        let n = node.index();
        assert!(
            frames >= self.live_per_node[n],
            "capacity {frames} below live count {} on node {n}",
            self.live_per_node[n]
        );
        self.capacity_per_node[n] = frames;
    }

    /// Grow `node`'s bank by `frames` (a refill granted from a shared
    /// [`FrameLedger`] at a window barrier).
    pub fn grant_capacity(&mut self, node: NodeId, frames: u64) {
        self.capacity_per_node[node.index()] += frames;
    }

    /// Shrink `node`'s bank by up to `frames`, never below its live
    /// count, returning how much was actually taken back. Departing
    /// tenants use this to return unused headroom to the shared pool.
    pub fn yield_capacity(&mut self, node: NodeId, frames: u64) -> u64 {
        let n = node.index();
        let spare = self.capacity_per_node[n] - self.live_per_node[n];
        let taken = frames.min(spare);
        self.capacity_per_node[n] -= taken;
        taken
    }
}

/// Machine-wide pool of frame *capacity* shared by otherwise-independent
/// tenant allocators.
///
/// Each tenant machine owns a private [`FrameAllocator`] (so the per-frame
/// hot path stays lock-free and shard-local), but the capacity those
/// allocators may use is metered here: tenants start with a small granted
/// slice, request refills when they run low, and yield spare capacity back
/// when mappings are torn down. All ledger traffic happens at window
/// barriers, applied in tenant-id order, so the grant/denial sequence —
/// and therefore every downstream allocation failure — is independent of
/// how tenants are packed into shards or threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameLedger {
    /// Unassigned capacity per node, in frames.
    free_per_node: Vec<u64>,
    grants: u64,
    granted_frames: u64,
    denials: u64,
    yields: u64,
    yielded_frames: u64,
}

impl FrameLedger {
    /// A ledger holding `free_per_node` unassigned frames per node.
    pub fn new(free_per_node: Vec<u64>) -> Self {
        FrameLedger {
            free_per_node,
            grants: 0,
            granted_frames: 0,
            denials: 0,
            yields: 0,
            yielded_frames: 0,
        }
    }

    /// Request up to `want` frames of capacity on `node`. Returns the
    /// granted amount (possibly zero). Short grants and outright refusals
    /// both count as denials — that is the cross-tenant memory pressure
    /// signal the multitenant bench reports.
    pub fn request(&mut self, node: NodeId, want: u64) -> u64 {
        let slot = &mut self.free_per_node[node.index()];
        let granted = want.min(*slot);
        *slot -= granted;
        if granted > 0 {
            self.grants += 1;
            self.granted_frames += granted;
        }
        if granted < want {
            self.denials += 1;
        }
        granted
    }

    /// Return `frames` of capacity on `node` to the pool.
    pub fn deposit(&mut self, node: NodeId, frames: u64) {
        if frames > 0 {
            self.free_per_node[node.index()] += frames;
            self.yields += 1;
            self.yielded_frames += frames;
        }
    }

    /// Unassigned capacity currently pooled on `node`.
    pub fn free_on(&self, node: NodeId) -> u64 {
        self.free_per_node[node.index()]
    }

    /// Number of (partially or fully) satisfied refill requests.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total frames handed out across all grants.
    pub fn granted_frames(&self) -> u64 {
        self.granted_frames
    }

    /// Number of requests that got less than they asked for.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// Number of capacity returns.
    pub fn yields(&self) -> u64 {
        self.yields
    }

    /// Total frames returned across all yields.
    pub fn yielded_frames(&self) -> u64 {
        self.yielded_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut fa = FrameAllocator::new(2, 100);
        let a = fa.alloc(NodeId(0)).unwrap();
        let b = fa.alloc(NodeId(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.live_on(NodeId(0)), 1);
        assert_eq!(fa.live_on(NodeId(1)), 1);
        fa.free(a);
        assert_eq!(fa.live_on(NodeId(0)), 0);
        assert_eq!(fa.allocated_total(), 2);
        assert_eq!(fa.freed_total(), 1);
        assert_eq!(fa.live_total(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut fa = FrameAllocator::new(1, 2);
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_none());
        // Freeing makes room again.
        let id = FrameId(0);
        fa.free(id);
        assert!(fa.alloc(NodeId(0)).is_some());
    }

    #[test]
    fn content_tags_unique_and_copyable() {
        let mut fa = FrameAllocator::new(2, 10);
        let a = fa.alloc(NodeId(0)).unwrap();
        let b = fa.alloc(NodeId(1)).unwrap();
        let tag_a = fa.get(a).unwrap().content_tag;
        let tag_b = fa.get(b).unwrap().content_tag;
        assert_ne!(tag_a, tag_b);
        fa.copy_contents(a, b);
        assert_eq!(fa.get(b).unwrap().content_tag, tag_a);
        // Source unchanged.
        assert_eq!(fa.get(a).unwrap().content_tag, tag_a);
    }

    #[test]
    fn write_generation_tracking() {
        let mut fa = FrameAllocator::new(1, 10);
        let f = fa.alloc(NodeId(0)).unwrap();
        assert_eq!(fa.write_gen(f), 0);
        fa.note_write(f);
        fa.note_write(f);
        assert_eq!(fa.write_gen(f), 2);
        // Content copies do not count as writes to the *source*.
        let g = fa.alloc(NodeId(0)).unwrap();
        fa.copy_contents(f, g);
        assert_eq!(fa.write_gen(f), 2);
    }

    #[test]
    fn per_node_capacities() {
        let mut fa = FrameAllocator::with_capacities(vec![1, 3]);
        assert_eq!(fa.capacity_of(NodeId(0)), 1);
        assert_eq!(fa.capacity_of(NodeId(1)), 3);
        assert!(fa.alloc(NodeId(0)).is_some());
        assert!(fa.alloc(NodeId(0)).is_none(), "fast bank exhausted");
        assert_eq!(fa.free_on(NodeId(0)), 0);
        assert_eq!(fa.free_on(NodeId(1)), 3);
        assert!(fa.alloc(NodeId(1)).is_some());
    }

    #[test]
    fn node_of_live_frame() {
        let mut fa = FrameAllocator::new(3, 10);
        let f = fa.alloc(NodeId(2)).unwrap();
        assert_eq!(fa.node_of(f), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "unknown frame")]
    fn double_free_panics() {
        let mut fa = FrameAllocator::new(1, 10);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.free(f);
        fa.free(f);
    }

    #[test]
    fn offline_refuses_alloc_but_keeps_frames_live() {
        let mut fa = FrameAllocator::new(2, 4);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.set_offline(NodeId(0));
        assert!(fa.is_offline(NodeId(0)));
        assert!(fa.alloc(NodeId(0)).is_none(), "offline bank refuses alloc");
        assert!(fa.alloc(NodeId(1)).is_some(), "other banks unaffected");
        // Resident frames on the offline node stay readable and freeable.
        assert_eq!(fa.node_of(f), NodeId(0));
        fa.free(f);
        assert_eq!(fa.live_on(NodeId(0)), 0);
        fa.set_online(NodeId(0));
        assert!(fa.alloc(NodeId(0)).is_some(), "online restores allocation");
    }

    #[test]
    fn watermarks_drive_pressure_levels() {
        let mut fa = FrameAllocator::new(1, 10);
        assert!(!fa.watermarked());
        fa.set_watermarks(NodeId(0), 4, 2);
        assert!(fa.watermarked());
        assert_eq!(fa.pressure_of(NodeId(0)), PressureLevel::Normal);
        for _ in 0..6 {
            fa.alloc(NodeId(0)).unwrap();
        }
        // 4 free == low watermark.
        assert_eq!(fa.pressure_of(NodeId(0)), PressureLevel::Low);
        for _ in 0..2 {
            fa.alloc(NodeId(0)).unwrap();
        }
        // 2 free == min watermark.
        assert_eq!(fa.pressure_of(NodeId(0)), PressureLevel::Min);
        // Probe reports each transition exactly once.
        assert_eq!(fa.probe_pressure(NodeId(0)), Some(PressureLevel::Min));
        assert_eq!(fa.probe_pressure(NodeId(0)), None);
        fa.free(FrameId(0));
        fa.free(FrameId(1));
        fa.free(FrameId(2));
        assert_eq!(fa.probe_pressure(NodeId(0)), Some(PressureLevel::Normal));
    }

    #[test]
    #[should_panic(expected = "must not exceed low")]
    fn inverted_watermarks_panic() {
        let mut fa = FrameAllocator::new(1, 10);
        fa.set_watermarks(NodeId(0), 2, 4);
    }

    #[test]
    fn capacity_adjustment_roundtrip() {
        let mut fa = FrameAllocator::new(1, 0);
        assert!(fa.alloc(NodeId(0)).is_none(), "zero capacity refuses");
        fa.set_capacity(NodeId(0), 2);
        let f = fa.alloc(NodeId(0)).unwrap();
        fa.grant_capacity(NodeId(0), 3);
        assert_eq!(fa.capacity_of(NodeId(0)), 5);
        // Only spare headroom (capacity - live) can be yielded.
        assert_eq!(fa.yield_capacity(NodeId(0), 10), 4);
        assert_eq!(fa.capacity_of(NodeId(0)), 1);
        assert!(fa.alloc(NodeId(0)).is_none(), "bank full again");
        fa.free(f);
        assert_eq!(fa.yield_capacity(NodeId(0), 10), 1);
    }

    #[test]
    #[should_panic(expected = "below live count")]
    fn set_capacity_below_live_panics() {
        let mut fa = FrameAllocator::new(1, 4);
        fa.alloc(NodeId(0)).unwrap();
        fa.alloc(NodeId(0)).unwrap();
        fa.set_capacity(NodeId(0), 1);
    }

    #[test]
    fn ledger_grants_denies_and_recycles() {
        let mut ledger = FrameLedger::new(vec![10, 0]);
        assert_eq!(ledger.request(NodeId(0), 6), 6);
        // Short grant: counts as both a grant and a denial.
        assert_eq!(ledger.request(NodeId(0), 6), 4);
        assert_eq!(ledger.request(NodeId(0), 1), 0);
        assert_eq!(ledger.request(NodeId(1), 5), 0);
        assert_eq!(ledger.grants(), 2);
        assert_eq!(ledger.granted_frames(), 10);
        assert_eq!(ledger.denials(), 3);
        ledger.deposit(NodeId(0), 3);
        assert_eq!(ledger.free_on(NodeId(0)), 3);
        assert_eq!(ledger.yields(), 1);
        assert_eq!(ledger.yielded_frames(), 3);
        assert_eq!(ledger.request(NodeId(0), 2), 2);
    }

    #[test]
    fn ids_never_reused() {
        let mut fa = FrameAllocator::new(1, 10);
        let a = fa.alloc(NodeId(0)).unwrap();
        fa.free(a);
        let b = fa.alloc(NodeId(0)).unwrap();
        assert_ne!(a, b);
    }
}
