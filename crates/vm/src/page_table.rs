//! The software page table.
//!
//! Struct-of-arrays PTE slabs with present bitmaps: the table is a sorted
//! vector of non-overlapping extents, each owning a `u64` present-bitmap
//! (one bit per record) plus parallel dense arrays for frames and flags.
//! `AddressSpace` reserves one slab per VMA at `mmap` time, so the access
//! hot path (`get`/`get_mut`) is a hint-cached binary search over a handful
//! of extents plus two indexed loads, and batch walks
//! (`walk_range`/`update_range`/`release_range`) skip absent runs with
//! `trailing_zeros` instead of testing an `Option` per slot — the same
//! representation fix the paper applies to the kernel's batch metadata,
//! here applied to the host.
//!
//! Three further properties fall out of the layout:
//!
//! * **Huge pages are single records.** A slab carries a `stride` (1 for
//!   base pages, [`crate::PAGES_PER_HUGE`] after
//!   [`PageTable::convert_range_to_huge`]); a huge mapping is one record
//!   per head instead of 512 base slots, so a 2 MB page costs 9 bytes of
//!   metadata, not 4.5 kB.
//! * **Stats are O(1).** Flag-class tallies ([`PageTable::stats`]) are
//!   maintained incrementally at map/unmap/protect time instead of by
//!   end-of-run scans.
//! * **Replica diffs are word-parallel.** [`PageTable::sync_from`]
//!   reconciles a replica against the primary with a bitmap-XOR pre-filter
//!   and whole-slice payload compares, falling back to per-record work
//!   only where a 64-record block actually differs.
//!
//! Shadow frames (in-flight tier migrations) are rare and short-lived, so
//! they live out of line in a side map; the dense arrays never widen for
//! them, and while the map is empty — the overwhelmingly common state —
//! every probe short-circuits on one length test. Absent records are
//! canonicalized to `FrameId(0)` / `PteFlags::EMPTY`, which is what makes
//! whole-slice compares between tables meaningful.
//!
//! The real kernel uses a radix tree; slabs give the same semantics, and
//! the *cost* of page-table walks is charged separately by the kernel
//! layer's cost model, so the host data structure choice does not leak
//! into results. Iteration order is ascending vpn by construction.

use crate::addr::PageRange;
use crate::pte::{Pte, PteFlags};
use crate::FrameId;
use numa_stats::PtStats;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};

/// Bits per present-bitmap word.
const WORD: usize = 64;

/// Sentinel for an invalidated lookup hint.
const NO_HINT: usize = usize::MAX;

/// One contiguous extent of PTE records, stored struct-of-arrays.
///
/// Invariants:
/// * bitmap bits at or above `records()` are always zero (so word-level
///   scans never need a tail mask beyond the requested window);
/// * absent records hold `FrameId(0)` / `PteFlags::EMPTY` (so slice
///   compares between tables see identical bytes wherever presence
///   agrees).
#[derive(Debug, Clone)]
struct Slab {
    /// First vpn covered.
    base: u64,
    /// Pages per record: 1 for base-page slabs, [`crate::PAGES_PER_HUGE`]
    /// for huge-converted extents (one record per huge head).
    stride: u64,
    /// Present bitmap, one bit per record.
    present: Vec<u64>,
    /// Backing frame per record.
    frames: Vec<FrameId>,
    /// Flag bits per record.
    flags: Vec<PteFlags>,
    /// Present records in this slab.
    live: usize,
}

impl Slab {
    fn new(base: u64, records: usize, stride: u64) -> Self {
        debug_assert!(records > 0, "empty slab");
        Slab {
            base,
            stride,
            present: vec![0; records.div_ceil(WORD)],
            frames: vec![FrameId(0); records],
            flags: vec![PteFlags::EMPTY; records],
            live: 0,
        }
    }

    /// Number of records (presence slots).
    fn records(&self) -> usize {
        self.frames.len()
    }

    /// One past the last vpn covered.
    fn end(&self) -> u64 {
        self.base + self.records() as u64 * self.stride
    }

    /// Record index for `vpn`; `None` when the vpn falls between the heads
    /// of a huge-stride slab (such pages have no entry of their own).
    #[inline]
    fn rec(&self, vpn: u64) -> Option<usize> {
        let off = vpn - self.base;
        if self.stride == 1 {
            Some(off as usize)
        } else if off.is_multiple_of(self.stride) {
            Some((off / self.stride) as usize)
        } else {
            None
        }
    }

    /// The vpn of record `rec`.
    #[inline]
    fn vpn_of(&self, rec: usize) -> u64 {
        self.base + rec as u64 * self.stride
    }

    #[inline]
    fn is_present(&self, rec: usize) -> bool {
        self.present[rec / WORD] & (1u64 << (rec % WORD)) != 0
    }

    #[inline]
    fn set_present(&mut self, rec: usize) {
        self.present[rec / WORD] |= 1u64 << (rec % WORD);
    }

    /// Clear presence and canonicalize the payload so absent records
    /// compare equal across tables.
    #[inline]
    fn clear_present(&mut self, rec: usize) {
        self.present[rec / WORD] &= !(1u64 << (rec % WORD));
        self.frames[rec] = FrameId(0);
        self.flags[rec] = PteFlags::EMPTY;
    }

    /// The record window `[lo, hi)` intersecting `range` (may be empty).
    fn window(&self, range: PageRange) -> (usize, usize) {
        let lo = if range.start_vpn > self.base {
            ((range.start_vpn - self.base).div_ceil(self.stride) as usize).min(self.records())
        } else {
            0
        };
        let hi = if range.end_vpn >= self.end() {
            self.records()
        } else if range.end_vpn <= self.base {
            0
        } else {
            (range.end_vpn - self.base).div_ceil(self.stride) as usize
        };
        (lo, hi)
    }

    /// The bitmap word `w` restricted to records `[r_lo, r_hi)`.
    #[inline]
    fn masked_word(&self, w: usize, r_lo: usize, r_hi: usize) -> u64 {
        let lo_bit = w * WORD;
        let mut bits = self.present[w];
        if r_lo > lo_bit {
            bits &= !0u64 << (r_lo - lo_bit);
        }
        if r_hi < lo_bit + WORD {
            bits &= (1u64 << (r_hi - lo_bit)) - 1;
        }
        bits
    }

    /// Append one absent record at the top.
    fn push_absent(&mut self) {
        if self.records().is_multiple_of(WORD) {
            self.present.push(0);
        }
        self.frames.push(FrameId(0));
        self.flags.push(PteFlags::EMPTY);
    }

    /// Prepend one absent record, extending the slab downward by a page
    /// (base-stride slabs only): shift the whole bitmap up one bit.
    fn prepend_absent(&mut self) {
        debug_assert_eq!(self.stride, 1);
        if self.records().is_multiple_of(WORD) {
            self.present.push(0);
        }
        let mut carry = 0u64;
        for w in &mut self.present {
            let out = *w >> (WORD - 1);
            *w = (*w << 1) | carry;
            carry = out;
        }
        debug_assert_eq!(carry, 0, "presence bit shifted past allocated words");
        self.frames.insert(0, FrameId(0));
        self.flags.insert(0, PteFlags::EMPTY);
        self.base -= 1;
    }

    /// Append the immediately-following slab `other` onto `self`,
    /// stitching its bitmap in at a (generally unaligned) bit offset.
    fn append(&mut self, other: Slab) {
        debug_assert_eq!(self.stride, 1);
        debug_assert_eq!(other.stride, 1);
        debug_assert_eq!(self.end(), other.base, "slabs must be adjacent");
        let off = self.records();
        self.frames.extend_from_slice(&other.frames);
        self.flags.extend_from_slice(&other.flags);
        self.present.resize(self.records().div_ceil(WORD), 0);
        let (shift, base_w) = (off % WORD, off / WORD);
        for (wi, &w) in other.present.iter().enumerate() {
            self.present[base_w + wi] |= w << shift;
            if shift != 0 {
                let spill = w >> (WORD - shift);
                if let Some(slot) = self.present.get_mut(base_w + wi + 1) {
                    *slot |= spill;
                } else {
                    debug_assert_eq!(spill, 0, "spill past the stitched bitmap");
                }
            }
        }
        self.live += other.live;
    }
}

/// Read a vpn's shadow frame, short-circuiting while no migration is in
/// flight anywhere in the table (the overwhelmingly common state).
#[inline]
fn probe_shadow(shadows: &BTreeMap<u64, FrameId>, vpn: u64) -> Option<FrameId> {
    if shadows.is_empty() {
        None
    } else {
        shadows.get(&vpn).copied()
    }
}

/// Remove and return a vpn's shadow frame, with the same short-circuit.
#[inline]
fn take_shadow(shadows: &mut BTreeMap<u64, FrameId>, vpn: u64) -> Option<FrameId> {
    if shadows.is_empty() {
        None
    } else {
        shadows.remove(&vpn)
    }
}

/// Flag-class tallies maintained at map/unmap/protect time so
/// [`PageTable::stats`] never scans.
#[derive(Debug, Clone, Copy, Default)]
struct FlagAgg {
    next_touch: u64,
    huge: u64,
    replica: u64,
}

impl FlagAgg {
    #[inline]
    fn add(&mut self, f: PteFlags) {
        self.next_touch += f.contains(PteFlags::NEXT_TOUCH) as u64;
        self.huge += f.contains(PteFlags::HUGE) as u64;
        self.replica += f.contains(PteFlags::REPLICA) as u64;
    }

    #[inline]
    fn sub(&mut self, f: PteFlags) {
        self.next_touch -= f.contains(PteFlags::NEXT_TOUCH) as u64;
        self.huge -= f.contains(PteFlags::HUGE) as u64;
        self.replica -= f.contains(PteFlags::REPLICA) as u64;
    }
}

/// Map from virtual page number to page-table entry, stored as dense
/// per-extent struct-of-arrays slabs.
///
/// Extents are created by [`PageTable::reserve_range`] (called for every
/// VMA insertion) or on demand by [`PageTable::map`] for standalone use;
/// they are released by [`PageTable::release_range`] (`munmap`). Unmapping
/// a single page keeps its reservation, matching a VMA whose page was
/// merely migrated away or never touched.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Extents sorted by `base`, non-overlapping.
    slabs: Vec<Slab>,
    /// Total present entries across all slabs.
    live: usize,
    /// Index of the last slab that satisfied a lookup — page touches are
    /// overwhelmingly local to one VMA, so this hint usually short-circuits
    /// the binary search. `NO_HINT` when invalidated by a structural edit.
    /// Purely a host-side cache; never observable.
    hint: Cell<usize>,
    /// In-flight tier-migration shadow frames, keyed by vpn. Shadows are
    /// rare and short-lived, so they live out of line, keeping the dense
    /// arrays narrow; probes short-circuit while the map is empty.
    shadows: BTreeMap<u64, FrameId>,
    /// Incremental flag tallies.
    agg: FlagAgg,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Index of the slab covering `vpn`, if any.
    #[inline]
    fn slab_index(&self, vpn: u64) -> Option<usize> {
        let hint = self.hint.get();
        if let Some(s) = self.slabs.get(hint) {
            if vpn >= s.base && vpn < s.end() {
                return Some(hint);
            }
        }
        let idx = self.slabs.partition_point(|s| s.base <= vpn);
        if idx == 0 {
            return None;
        }
        let s = &self.slabs[idx - 1];
        if vpn < s.end() {
            self.hint.set(idx - 1);
            Some(idx - 1)
        } else {
            None
        }
    }

    /// Index of the first slab whose extent ends after `vpn` (i.e. the
    /// first slab that could intersect a range starting at `vpn`).
    fn first_slab_from(&self, vpn: u64) -> usize {
        let idx = self.slabs.partition_point(|s| s.base <= vpn);
        if idx > 0 && self.slabs[idx - 1].end() > vpn {
            idx - 1
        } else {
            idx
        }
    }

    /// A slab was inserted at `idx`: every following index shifted up by
    /// one, so a hint at or past it moves with its slab.
    fn hint_inserted(&self, idx: usize) {
        let h = self.hint.get();
        if h != NO_HINT && h >= idx {
            self.hint.set(h + 1);
        }
    }

    /// The slab run `[lo, hi)` was removed: shift a hint past it down,
    /// invalidate a hint inside it, leave earlier hints untouched.
    fn hint_removed(&self, lo: usize, hi: usize) {
        let h = self.hint.get();
        if h == NO_HINT {
            return;
        }
        if h >= hi {
            self.hint.set(h - (hi - lo));
        } else if h >= lo {
            self.hint.set(NO_HINT);
        }
    }

    /// Assemble the full PTE for a present record.
    #[inline]
    fn load(&self, s: &Slab, rec: usize, vpn: u64) -> Pte {
        Pte {
            frame: s.frames[rec],
            shadow: probe_shadow(&self.shadows, vpn),
            flags: s.flags[rec],
        }
    }

    /// Look up the PTE for `vpn`.
    #[inline]
    pub fn get(&self, vpn: u64) -> Option<Pte> {
        let i = self.slab_index(vpn)?;
        let s = &self.slabs[i];
        let rec = s.rec(vpn)?;
        if !s.is_present(rec) {
            return None;
        }
        Some(self.load(s, rec, vpn))
    }

    /// Mutable PTE lookup. The guard holds a copy of the entry; edits are
    /// written back (and the incremental stats adjusted) when it drops.
    #[inline]
    pub fn get_mut(&mut self, vpn: u64) -> Option<PteRefMut<'_>> {
        let i = self.slab_index(vpn)?;
        let (rec, cur) = {
            let s = &self.slabs[i];
            let rec = s.rec(vpn)?;
            if !s.is_present(rec) {
                return None;
            }
            (rec, self.load(s, rec, vpn))
        };
        Some(PteRefMut {
            pt: self,
            slab: i,
            rec,
            vpn,
            orig: cur,
            cur,
        })
    }

    /// Install a mapping. Returns the previous entry if one existed
    /// (callers that expect a fresh mapping assert on `None`).
    ///
    /// Mapping a vpn outside every reserved extent grows the table,
    /// coalescing with an adjacent slab on either side where possible.
    /// Standalone users (tests, reference models) therefore never need to
    /// reserve explicitly. Mapping a non-head page of a huge-converted
    /// extent demotes that extent back to base-page records first.
    pub fn map(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        let i = match self.slab_index(vpn) {
            Some(i) => i,
            None => self.grow_for(vpn),
        };
        if self.slabs[i].stride != 1
            && !(vpn - self.slabs[i].base).is_multiple_of(self.slabs[i].stride)
        {
            self.demote_slab(i);
        }
        let PageTable {
            slabs,
            live,
            shadows,
            agg,
            ..
        } = self;
        let s = &mut slabs[i];
        let rec = s.rec(vpn).expect("record exists after demotion");
        let prev = if s.is_present(rec) {
            let flags = s.flags[rec];
            agg.sub(flags);
            Some(Pte {
                frame: s.frames[rec],
                shadow: take_shadow(shadows, vpn),
                flags,
            })
        } else {
            s.set_present(rec);
            s.live += 1;
            *live += 1;
            None
        };
        s.frames[rec] = pte.frame;
        s.flags[rec] = pte.flags;
        agg.add(pte.flags);
        if let Some(f) = pte.shadow {
            shadows.insert(vpn, f);
        }
        prev
    }

    /// Expand a huge-stride slab back into base-page records, relocating
    /// each head entry to its base-page offset. Rare: only a base-grain
    /// map landing inside a converted extent needs it.
    fn demote_slab(&mut self, i: usize) {
        let old = &self.slabs[i];
        debug_assert!(old.stride > 1);
        let mut fresh = Slab::new(old.base, (old.end() - old.base) as usize, 1);
        for (w, &word) in old.present.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let rec = w * WORD + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let new_rec = rec * old.stride as usize;
                fresh.set_present(new_rec);
                fresh.frames[new_rec] = old.frames[rec];
                fresh.flags[new_rec] = old.flags[rec];
            }
        }
        fresh.live = old.live;
        self.slabs[i] = fresh;
    }

    /// Make room for an unreserved `vpn`; returns the slab index covering
    /// it. Coalesces with a base-stride neighbour on either side —
    /// preceding (`prev.end() == vpn`), following (`next.base == vpn + 1`),
    /// or both (the new page bridges them into one slab) — so ascending
    /// *and* descending standalone map sequences build one extent instead
    /// of fragmenting into one single-page slab per page.
    fn grow_for(&mut self, vpn: u64) -> usize {
        let idx = self.slabs.partition_point(|s| s.base <= vpn);
        let prev_adj =
            idx > 0 && self.slabs[idx - 1].stride == 1 && self.slabs[idx - 1].end() == vpn;
        let next_adj = self
            .slabs
            .get(idx)
            .is_some_and(|s| s.stride == 1 && s.base == vpn + 1);
        match (prev_adj, next_adj) {
            (true, true) => {
                // Bridge: extend the left slab by one page, then stitch the
                // right slab's records onto it.
                let next = self.slabs.remove(idx);
                self.slabs[idx - 1].push_absent();
                self.slabs[idx - 1].append(next);
                self.hint_removed(idx, idx + 1);
                idx - 1
            }
            (true, false) => {
                self.slabs[idx - 1].push_absent();
                idx - 1
            }
            (false, true) => {
                self.slabs[idx].prepend_absent();
                idx
            }
            (false, false) => {
                self.slabs.insert(idx, Slab::new(vpn, 1, 1));
                self.hint_inserted(idx);
                idx
            }
        }
    }

    /// Remove a mapping, returning it. The slot's reservation is kept —
    /// only [`PageTable::release_range`] drops extent storage.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        let i = self.slab_index(vpn)?;
        let PageTable {
            slabs,
            live,
            shadows,
            agg,
            ..
        } = self;
        let s = &mut slabs[i];
        let rec = s.rec(vpn)?;
        if !s.is_present(rec) {
            return None;
        }
        let flags = s.flags[rec];
        let prev = Pte {
            frame: s.frames[rec],
            shadow: take_shadow(shadows, vpn),
            flags,
        };
        s.clear_present(rec);
        s.live -= 1;
        *live -= 1;
        agg.sub(flags);
        Some(prev)
    }

    /// Pre-size records for every page of `range` (called for each VMA
    /// insertion). Gaps between existing extents are filled with fresh
    /// slabs; already-covered pages are left untouched.
    pub fn reserve_range(&mut self, range: PageRange) {
        let mut cursor = range.start_vpn;
        while cursor < range.end_vpn {
            let idx = self.slabs.partition_point(|s| s.base <= cursor);
            if idx > 0 && self.slabs[idx - 1].end() > cursor {
                cursor = self.slabs[idx - 1].end();
                continue;
            }
            let next_base = self.slabs.get(idx).map_or(u64::MAX, |s| s.base);
            let end = range.end_vpn.min(next_base);
            self.slabs
                .insert(idx, Slab::new(cursor, (end - cursor) as usize, 1));
            self.hint_inserted(idx);
            cursor = end;
        }
    }

    /// Convert the (still unpopulated) reservation exactly covering
    /// `range` into a huge-stride extent: one record per
    /// [`crate::PAGES_PER_HUGE`] pages. Only heads carry entries
    /// afterwards; non-head lookups return `None` and non-head maps panic.
    /// Returns `false` (leaving base-page storage in place) when the range
    /// is not huge-alignable or its slab is already populated or shared.
    pub fn convert_range_to_huge(&mut self, range: PageRange) -> bool {
        if range.is_empty() || !range.pages().is_multiple_of(crate::PAGES_PER_HUGE) {
            return false;
        }
        let idx = self.first_slab_from(range.start_vpn);
        let Some(s) = self.slabs.get_mut(idx) else {
            return false;
        };
        if s.base != range.start_vpn || s.end() != range.end_vpn || s.live != 0 || s.stride != 1 {
            return false;
        }
        *s = Slab::new(
            range.start_vpn,
            (range.pages() / crate::PAGES_PER_HUGE) as usize,
            crate::PAGES_PER_HUGE,
        );
        true
    }

    /// Clear records `[r_lo, r_hi)` of slab `i` within `range`, pushing the
    /// removed PTEs onto `out` in ascending order.
    fn take_window(&mut self, i: usize, range: PageRange, out: &mut Vec<Pte>) {
        let PageTable {
            slabs,
            live,
            shadows,
            agg,
            ..
        } = self;
        let s = &mut slabs[i];
        let (r_lo, r_hi) = s.window(range);
        let mut w = r_lo / WORD;
        while w * WORD < r_hi {
            let mut bits = s.masked_word(w, r_lo, r_hi);
            while bits != 0 {
                let rec = w * WORD + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let flags = s.flags[rec];
                let vpn = s.vpn_of(rec);
                out.push(Pte {
                    frame: s.frames[rec],
                    shadow: take_shadow(shadows, vpn),
                    flags,
                });
                s.clear_present(rec);
                s.live -= 1;
                *live -= 1;
                agg.sub(flags);
            }
            w += 1;
        }
    }

    /// Drop every mapping in `range`, returning the removed entries in
    /// ascending vpn order, and release the storage of extents that lie
    /// entirely inside the range (`munmap`). Extents straddling a boundary
    /// keep their out-of-range reservation.
    ///
    /// The run of fully-covered slabs is spliced out with a single
    /// `drain`, so a munmap over a many-slab space is linear (the old
    /// per-slab `Vec::remove` made it quadratic).
    pub fn release_range(&mut self, range: PageRange) -> Vec<Pte> {
        let mut removed = Vec::new();
        if range.is_empty() {
            return removed;
        }
        let mut i = self.first_slab_from(range.start_vpn);
        // Leading partially-covered slabs: clear records in place.
        while i < self.slabs.len() {
            let s = &self.slabs[i];
            if s.base >= range.end_vpn {
                return removed;
            }
            if s.base >= range.start_vpn && s.end() <= range.end_vpn {
                break;
            }
            self.take_window(i, range, &mut removed);
            i += 1;
        }
        // The contiguous run of fully-covered slabs.
        let lo = i;
        while i < self.slabs.len() && self.slabs[i].end() <= range.end_vpn {
            debug_assert!(self.slabs[i].base >= range.start_vpn);
            i += 1;
        }
        if i > lo {
            let PageTable {
                slabs,
                live,
                shadows,
                agg,
                ..
            } = self;
            for s in slabs.drain(lo..i) {
                *live -= s.live;
                for (w, &word) in s.present.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let rec = w * WORD + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let flags = s.flags[rec];
                        agg.sub(flags);
                        removed.push(Pte {
                            frame: s.frames[rec],
                            shadow: take_shadow(shadows, s.vpn_of(rec)),
                            flags,
                        });
                    }
                }
            }
            self.hint_removed(lo, i);
            i = lo;
        }
        // At most one trailing partially-covered slab remains.
        if i < self.slabs.len() && self.slabs[i].base < range.end_vpn {
            self.take_window(i, range, &mut removed);
        }
        removed
    }

    /// Is `vpn` mapped (present or not)?
    pub fn is_mapped(&self, vpn: u64) -> bool {
        self.get(vpn).is_some()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// O(1) aggregate statistics, maintained incrementally by every
    /// mutating operation — reading them never walks the slabs.
    pub fn stats(&self) -> PtStats {
        PtStats {
            mapped: self.live as u64,
            next_touch: self.agg.next_touch,
            huge: self.agg.huge,
            replica: self.agg.replica,
            shadow: self.shadows.len() as u64,
            slabs: self.slabs.len() as u64,
        }
    }

    /// Iterate over `(vpn, pte)` pairs in ascending vpn order (the slab
    /// layout is sorted, so order costs nothing).
    pub fn iter(&self) -> WalkRange<'_> {
        self.walk_range(PageRange::new(0, u64::MAX))
    }

    /// Iterate over the mapped `(vpn, pte)` pairs of `range` in ascending
    /// vpn order, popping present bits with `trailing_zeros` so absent
    /// runs cost one word test per 64 records — the batch-walk primitive
    /// behind `migrate_pages`, `madvise`, `mprotect` and the tier
    /// promotion scan.
    pub fn walk_range(&self, range: PageRange) -> WalkRange<'_> {
        let slab_idx = if range.is_empty() {
            self.slabs.len()
        } else {
            self.first_slab_from(range.start_vpn)
        };
        WalkRange {
            slabs: &self.slabs,
            shadows: &self.shadows,
            range,
            slab_idx,
            word_idx: 0,
            r_hi: 0,
            cur_word: 0,
            entered: false,
        }
    }

    /// Apply `f` to every mapped entry of `range` in ascending vpn order.
    /// The mutable counterpart of [`PageTable::walk_range`]: each present
    /// record is loaded, passed to `f`, and stored back only if it
    /// changed, with the incremental stats adjusted on the way.
    pub fn update_range<F: FnMut(u64, &mut Pte)>(&mut self, range: PageRange, mut f: F) {
        if range.is_empty() {
            return;
        }
        let start = self.first_slab_from(range.start_vpn);
        let PageTable {
            slabs,
            shadows,
            agg,
            ..
        } = self;
        for s in &mut slabs[start..] {
            if s.base >= range.end_vpn {
                break;
            }
            let (r_lo, r_hi) = s.window(range);
            let mut w = r_lo / WORD;
            while w * WORD < r_hi {
                let mut bits = s.masked_word(w, r_lo, r_hi);
                while bits != 0 {
                    let rec = w * WORD + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let vpn = s.vpn_of(rec);
                    let flags = s.flags[rec];
                    let before = Pte {
                        frame: s.frames[rec],
                        shadow: probe_shadow(shadows, vpn),
                        flags,
                    };
                    let mut pte = before;
                    f(vpn, &mut pte);
                    if pte == before {
                        continue;
                    }
                    s.frames[rec] = pte.frame;
                    s.flags[rec] = pte.flags;
                    if pte.flags != flags {
                        agg.sub(flags);
                        agg.add(pte.flags);
                    }
                    if pte.shadow != before.shadow {
                        match pte.shadow {
                            Some(fr) => {
                                shadows.insert(vpn, fr);
                            }
                            None => {
                                shadows.remove(&vpn);
                            }
                        }
                    }
                }
                w += 1;
            }
        }
    }

    /// All mapped vpns, sorted — used by `migrate_pages`, which walks the
    /// address space in order (that ordered walk is why the paper measures
    /// better locality for it than for `move_pages`, §4.2). With sorted
    /// slabs this is a plain ordered collect, no sort.
    pub fn sorted_vpns(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.live);
        v.extend(self.iter().map(|(vpn, _)| vpn));
        v
    }

    /// Every frame currently referenced by an entry (for leak checks).
    pub fn referenced_frames(&self) -> Vec<FrameId> {
        self.iter().map(|(_, p)| p.frame).collect()
    }

    /// Index of our slab with exactly the same extent geometry as `s`
    /// (base, stride and record count), if any.
    fn aligned_with(&self, s: &Slab) -> Option<usize> {
        let idx = self.slabs.partition_point(|t| t.base < s.base);
        let t = self.slabs.get(idx)?;
        (t.base == s.base && t.stride == s.stride && t.records() == s.records()).then_some(idx)
    }

    /// Does any slab intersect `[lo, hi)`?
    fn overlaps(&self, lo: u64, hi: u64) -> bool {
        let idx = self.first_slab_from(lo);
        self.slabs.get(idx).is_some_and(|s| s.base < hi)
    }

    /// Clone a whole primary slab into a gap of this table. Safe to copy
    /// the arrays verbatim because absent records are canonicalized.
    fn adopt_slab(&mut self, ps: &Slab) -> u64 {
        debug_assert!(!self.overlaps(ps.base, ps.end()));
        for (w, &word) in ps.present.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let rec = w * WORD + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.agg.add(ps.flags[rec]);
            }
        }
        self.live += ps.live;
        let idx = self.slabs.partition_point(|t| t.base <= ps.base);
        self.slabs.insert(idx, ps.clone());
        self.hint_inserted(idx);
        ps.live as u64
    }

    /// Word-parallel diff of one geometry-aligned slab pair: presence XOR
    /// picks out installs and removals, slice equality skips untouched
    /// 64-record blocks, and only genuinely-differing records are touched.
    /// Returns the number of records written. Fast path only — neither
    /// table may carry shadows here.
    fn sync_aligned(&mut self, ps: &Slab, si: usize, range: PageRange) -> u64 {
        let PageTable {
            slabs, live, agg, ..
        } = self;
        let s = &mut slabs[si];
        debug_assert_eq!(
            (s.base, s.stride, s.records()),
            (ps.base, ps.stride, ps.records())
        );
        let (r_lo, r_hi) = s.window(range);
        let mut changed = 0u64;
        let mut w = r_lo / WORD;
        while w * WORD < r_hi {
            let lo_bit = w * WORD;
            let sw = s.masked_word(w, r_lo, r_hi);
            let pw = ps.masked_word(w, r_lo, r_hi);
            let hi_rec = (lo_bit + WORD).min(s.records());
            if sw == pw
                && s.frames[lo_bit..hi_rec] == ps.frames[lo_bit..hi_rec]
                && s.flags[lo_bit..hi_rec] == ps.flags[lo_bit..hi_rec]
            {
                w += 1;
                continue;
            }
            let mut bits = sw & !pw; // replica-only: unmap
            while bits != 0 {
                let rec = lo_bit + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                agg.sub(s.flags[rec]);
                s.clear_present(rec);
                s.live -= 1;
                *live -= 1;
                changed += 1;
            }
            let mut bits = pw & !sw; // primary-only: install
            while bits != 0 {
                let rec = lo_bit + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                s.set_present(rec);
                s.frames[rec] = ps.frames[rec];
                s.flags[rec] = ps.flags[rec];
                agg.add(ps.flags[rec]);
                s.live += 1;
                *live += 1;
                changed += 1;
            }
            let mut bits = sw & pw; // both present: overwrite if differing
            while bits != 0 {
                let rec = lo_bit + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if s.frames[rec] != ps.frames[rec] || s.flags[rec] != ps.flags[rec] {
                    agg.sub(s.flags[rec]);
                    agg.add(ps.flags[rec]);
                    s.frames[rec] = ps.frames[rec];
                    s.flags[rec] = ps.flags[rec];
                    changed += 1;
                }
            }
            w += 1;
        }
        changed
    }

    /// Reconcile `self` (a replica) with `primary` over `range`: entries
    /// present only here are unmapped, entries present only in the primary
    /// are installed, and entries that differ are overwritten. Returns the
    /// number of PTEs written (the quantity the cost model charges for).
    ///
    /// Geometry-aligned slab pairs — the overwhelmingly common case, since
    /// replicas start as clones and see the same reserve/release ranges —
    /// diff word-parallel via [`PageTable::sync_aligned`]; whole primary
    /// slabs falling into a replica gap are adopted by cloning the arrays.
    /// Everything else (and any table carrying in-flight shadow entries)
    /// takes the generic per-record path with identical semantics.
    pub fn sync_from(&mut self, primary: &PageTable, range: PageRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        let fast = self.shadows.is_empty() && primary.shadows.is_empty();
        let mut changed = 0u64;

        // Pass 1: drop replica-only entries. Aligned pairs handle their
        // removals word-parallel in pass 2; everything else probes the
        // primary per present record.
        let mut i = self.first_slab_from(range.start_vpn);
        while i < self.slabs.len() && self.slabs[i].base < range.end_vpn {
            if fast && self.aligned_twin_in(primary, i) {
                i += 1;
                continue;
            }
            let mut stale = Vec::new();
            {
                let s = &self.slabs[i];
                let (r_lo, r_hi) = s.window(range);
                let mut w = r_lo / WORD;
                while w * WORD < r_hi {
                    let mut bits = s.masked_word(w, r_lo, r_hi);
                    while bits != 0 {
                        let rec = w * WORD + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let vpn = s.vpn_of(rec);
                        if primary.get(vpn).is_none() {
                            stale.push(vpn);
                        }
                    }
                    w += 1;
                }
            }
            for vpn in stale {
                self.unmap(vpn);
                changed += 1;
            }
            i += 1;
        }

        // Pass 2: install fresh and overwrite differing entries.
        let mut pi = primary.first_slab_from(range.start_vpn);
        while pi < primary.slabs.len() && primary.slabs[pi].base < range.end_vpn {
            let ps = &primary.slabs[pi];
            if fast {
                if let Some(si) = self.aligned_with(ps) {
                    changed += self.sync_aligned(ps, si, range);
                    pi += 1;
                    continue;
                }
                if range.start_vpn <= ps.base
                    && ps.end() <= range.end_vpn
                    && !self.overlaps(ps.base, ps.end())
                {
                    changed += self.adopt_slab(ps);
                    pi += 1;
                    continue;
                }
            }
            let (r_lo, r_hi) = ps.window(range);
            let mut w = r_lo / WORD;
            while w * WORD < r_hi {
                let mut bits = ps.masked_word(w, r_lo, r_hi);
                while bits != 0 {
                    let rec = w * WORD + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let vpn = ps.vpn_of(rec);
                    let pte = primary.load(ps, rec, vpn);
                    if self.get(vpn) != Some(pte) {
                        self.map(vpn, pte);
                        changed += 1;
                    }
                }
                w += 1;
            }
            pi += 1;
        }
        changed
    }

    /// Does our slab `i` have a geometry-aligned twin in `other`?
    fn aligned_twin_in(&self, other: &PageTable, i: usize) -> bool {
        other.aligned_with(&self.slabs[i]).is_some()
    }
}

/// Write-back guard returned by [`PageTable::get_mut`].
///
/// Derefs to a local copy of the entry; on drop, any change is stored back
/// into the struct-of-arrays slab and the incremental stats (and the
/// shadow side map) are adjusted to match.
#[derive(Debug)]
pub struct PteRefMut<'a> {
    pt: &'a mut PageTable,
    slab: usize,
    rec: usize,
    vpn: u64,
    orig: Pte,
    cur: Pte,
}

impl Deref for PteRefMut<'_> {
    type Target = Pte;
    fn deref(&self) -> &Pte {
        &self.cur
    }
}

impl DerefMut for PteRefMut<'_> {
    fn deref_mut(&mut self) -> &mut Pte {
        &mut self.cur
    }
}

impl Drop for PteRefMut<'_> {
    fn drop(&mut self) {
        if self.cur == self.orig {
            return;
        }
        {
            let s = &mut self.pt.slabs[self.slab];
            s.frames[self.rec] = self.cur.frame;
            s.flags[self.rec] = self.cur.flags;
        }
        if self.cur.flags != self.orig.flags {
            self.pt.agg.sub(self.orig.flags);
            self.pt.agg.add(self.cur.flags);
        }
        if self.cur.shadow != self.orig.shadow {
            match self.cur.shadow {
                Some(f) => {
                    self.pt.shadows.insert(self.vpn, f);
                }
                None => {
                    self.pt.shadows.remove(&self.vpn);
                }
            }
        }
    }
}

/// Ordered iterator over the mapped entries of a vpn range.
/// See [`PageTable::walk_range`].
#[derive(Debug)]
pub struct WalkRange<'a> {
    slabs: &'a [Slab],
    shadows: &'a BTreeMap<u64, FrameId>,
    range: PageRange,
    /// Next slab to enter (or the one being walked once `entered`).
    slab_idx: usize,
    /// Word cursor within the current slab.
    word_idx: usize,
    /// Record window upper bound within the current slab.
    r_hi: usize,
    /// Remaining present bits of the current word (window-masked).
    cur_word: u64,
    /// Is `slab_idx` the slab currently being walked?
    entered: bool,
}

impl WalkRange<'_> {
    /// Advance to the next non-empty window-masked word, entering new
    /// slabs as needed. Returns `false` when the range is exhausted.
    fn refill(&mut self) -> bool {
        loop {
            if !self.entered {
                let Some(s) = self.slabs.get(self.slab_idx) else {
                    return false;
                };
                if s.base >= self.range.end_vpn {
                    return false;
                }
                let (r_lo, r_hi) = s.window(self.range);
                self.word_idx = r_lo / WORD;
                self.r_hi = r_hi;
                self.entered = true;
                if self.word_idx * WORD < r_hi {
                    self.cur_word = s.masked_word(self.word_idx, r_lo, r_hi);
                    if self.cur_word != 0 {
                        return true;
                    }
                }
            }
            let s = &self.slabs[self.slab_idx];
            loop {
                self.word_idx += 1;
                if self.word_idx * WORD >= self.r_hi {
                    self.slab_idx += 1;
                    self.entered = false;
                    break;
                }
                // Only the first and last words of a window need masking;
                // interior words are taken whole. `masked_word` with a
                // zero-offset lower bound reduces to exactly that.
                self.cur_word = s.masked_word(self.word_idx, 0, self.r_hi);
                if self.cur_word != 0 {
                    return true;
                }
            }
        }
    }
}

impl Iterator for WalkRange<'_> {
    type Item = (u64, Pte);

    fn next(&mut self) -> Option<(u64, Pte)> {
        if self.cur_word == 0 && !self.refill() {
            return None;
        }
        let s = &self.slabs[self.slab_idx];
        let rec = self.word_idx * WORD + self.cur_word.trailing_zeros() as usize;
        self.cur_word &= self.cur_word - 1;
        let vpn = s.vpn_of(rec);
        Some((
            vpn,
            Pte {
                frame: s.frames[rec],
                shadow: probe_shadow(self.shadows, vpn),
                flags: s.flags[rec],
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;

    /// Recompute the aggregate the slow way; every mutating test path
    /// cross-checks the incremental tallies against it.
    fn recount(pt: &PageTable) -> PtStats {
        let mut s = PtStats {
            slabs: pt.slabs.len() as u64,
            ..PtStats::default()
        };
        for (_, pte) in pt.iter() {
            s.mapped += 1;
            s.next_touch += pte.flags.contains(PteFlags::NEXT_TOUCH) as u64;
            s.huge += pte.flags.contains(PteFlags::HUGE) as u64;
            s.replica += pte.flags.contains(PteFlags::REPLICA) as u64;
            s.shadow += pte.shadow.is_some() as u64;
        }
        s
    }

    fn assert_stats_consistent(pt: &PageTable) {
        assert_eq!(pt.stats(), recount(pt), "incremental stats drifted");
    }

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        assert_eq!(pt.map(5, Pte::present_rw(FrameId(1))), None);
        assert!(pt.is_mapped(5));
        assert_eq!(pt.get(5).unwrap().frame, FrameId(1));
        let old = pt.unmap(5).unwrap();
        assert_eq!(old.frame, FrameId(1));
        assert!(!pt.is_mapped(5));
        assert_stats_consistent(&pt);
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new();
        pt.map(1, Pte::present_rw(FrameId(1)));
        let prev = pt.map(1, Pte::present_rw(FrameId(2)));
        assert_eq!(prev.unwrap().frame, FrameId(1));
        assert_eq!(pt.get(1).unwrap().frame, FrameId(2));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn get_mut_allows_flag_updates() {
        let mut pt = PageTable::new();
        pt.map(9, Pte::present_rw(FrameId(3)));
        pt.get_mut(9).unwrap().mark_next_touch();
        assert!(pt.get(9).unwrap().flags.contains(PteFlags::NEXT_TOUCH));
        assert_eq!(pt.stats().next_touch, 1);
        assert_stats_consistent(&pt);
    }

    #[test]
    fn get_mut_shadow_roundtrip() {
        let mut pt = PageTable::new();
        pt.map(4, Pte::present_rw(FrameId(1)));
        pt.get_mut(4).unwrap().set_shadow(FrameId(9));
        assert_eq!(pt.get(4).unwrap().shadow, Some(FrameId(9)));
        assert_eq!(pt.stats().shadow, 1);
        let src = pt.get_mut(4).unwrap().commit_shadow();
        assert_eq!(src, FrameId(1));
        assert_eq!(pt.get(4).unwrap().frame, FrameId(9));
        assert_eq!(pt.get(4).unwrap().shadow, None);
        assert_eq!(pt.stats().shadow, 0);
        assert_stats_consistent(&pt);
    }

    #[test]
    fn sorted_vpns_sorted() {
        let mut pt = PageTable::new();
        for vpn in [9u64, 2, 7, 4] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.sorted_vpns(), vec![2, 4, 7, 9]);
    }

    #[test]
    fn referenced_frames_complete() {
        let mut pt = PageTable::new();
        pt.map(1, Pte::present_rw(FrameId(10)));
        pt.map(2, Pte::present_rw(FrameId(20)));
        let mut frames = pt.referenced_frames();
        frames.sort();
        assert_eq!(frames, vec![FrameId(10), FrameId(20)]);
    }

    #[test]
    fn reserve_then_map_uses_the_slab() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(100, 110));
        assert!(pt.is_empty(), "reservation maps nothing");
        assert_eq!(pt.map(105, Pte::present_rw(FrameId(1))), None);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(105).unwrap().frame, FrameId(1));
        assert!(pt.get(104).is_none());
    }

    #[test]
    fn reserve_fills_only_gaps() {
        let mut pt = PageTable::new();
        pt.map(5, Pte::present_rw(FrameId(1)));
        // Overlapping reservation must not disturb the existing entry.
        pt.reserve_range(PageRange::new(0, 10));
        assert_eq!(pt.get(5).unwrap().frame, FrameId(1));
        assert_eq!(pt.len(), 1);
        pt.map(0, Pte::present_rw(FrameId(2)));
        pt.map(9, Pte::present_rw(FrameId(3)));
        assert_eq!(pt.sorted_vpns(), vec![0, 5, 9]);
    }

    #[test]
    fn release_returns_entries_in_order_and_drops_storage() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(10, 20));
        for vpn in [12u64, 17, 15] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let removed = pt.release_range(PageRange::new(10, 20));
        let frames: Vec<FrameId> = removed.iter().map(|p| p.frame).collect();
        assert_eq!(frames, vec![FrameId(12), FrameId(15), FrameId(17)]);
        assert!(pt.is_empty());
        // The extent is gone: mapping again auto-creates fresh storage.
        assert_eq!(pt.map(12, Pte::present_rw(FrameId(1))), None);
        assert_stats_consistent(&pt);
    }

    #[test]
    fn release_keeps_out_of_range_reservation() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 10));
        pt.map(2, Pte::present_rw(FrameId(2)));
        pt.map(7, Pte::present_rw(FrameId(7)));
        let removed = pt.release_range(PageRange::new(0, 5));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].frame, FrameId(2));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(7).unwrap().frame, FrameId(7));
    }

    #[test]
    fn release_splices_covered_run_in_order() {
        // Regression: many fully-covered slabs used to be removed one
        // `Vec::remove` at a time (quadratic); the drain-based splice must
        // preserve exact ascending order across partial and full slabs.
        let mut pt = PageTable::new();
        for base in [0u64, 10, 20, 30, 40] {
            pt.reserve_range(PageRange::new(base, base + 4));
        }
        for vpn in [1u64, 3, 10, 12, 21, 23, 31, 41, 42] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.slabs.len(), 5);
        let removed = pt.release_range(PageRange::new(2, 42));
        let vpns: Vec<u64> = removed.iter().map(|p| p.frame.0).collect();
        assert_eq!(vpns, vec![3, 10, 12, 21, 23, 31, 41]);
        // Slabs 10.. and 20.. and 30.. were fully covered and spliced out;
        // the straddling first and last slabs keep their reservations.
        assert_eq!(pt.slabs.len(), 2);
        assert_eq!(pt.sorted_vpns(), vec![1, 42]);
        assert_stats_consistent(&pt);
    }

    #[test]
    fn walk_range_yields_mapped_subrange_in_order() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 32));
        for vpn in [1u64, 4, 5, 9, 30] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let got: Vec<u64> = pt
            .walk_range(PageRange::new(4, 30))
            .map(|(v, _)| v)
            .collect();
        assert_eq!(got, vec![4, 5, 9]);
        let all: Vec<u64> = pt.iter().map(|(v, _)| v).collect();
        assert_eq!(all, vec![1, 4, 5, 9, 30]);
    }

    #[test]
    fn walk_range_spans_multiple_slabs() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 4));
        pt.reserve_range(PageRange::new(100, 104));
        pt.map(2, Pte::present_rw(FrameId(2)));
        pt.map(101, Pte::present_rw(FrameId(101)));
        let got: Vec<u64> = pt
            .walk_range(PageRange::new(0, 1000))
            .map(|(v, _)| v)
            .collect();
        assert_eq!(got, vec![2, 101]);
    }

    #[test]
    fn walk_range_crosses_word_boundaries() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 200));
        // One page per bitmap word plus neighbours of the boundaries.
        let vpns = [0u64, 63, 64, 65, 127, 128, 190];
        for &vpn in &vpns {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let got: Vec<u64> = pt.iter().map(|(v, _)| v).collect();
        assert_eq!(got, vpns);
        let mid: Vec<u64> = pt
            .walk_range(PageRange::new(63, 128))
            .map(|(v, _)| v)
            .collect();
        assert_eq!(mid, vec![63, 64, 65, 127]);
    }

    #[test]
    fn update_range_mutates_only_mapped_pages() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 16));
        for vpn in [3u64, 8, 12] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let mut touched = Vec::new();
        pt.update_range(PageRange::new(0, 10), |vpn, pte| {
            pte.mark_next_touch();
            touched.push(vpn);
        });
        assert_eq!(touched, vec![3, 8]);
        assert!(pt.get(3).unwrap().is_next_touch());
        assert!(pt.get(8).unwrap().is_next_touch());
        assert!(!pt.get(12).unwrap().is_next_touch());
        assert_eq!(pt.stats().next_touch, 2);
        assert_stats_consistent(&pt);
    }

    #[test]
    fn adjacent_unreserved_maps_extend_one_slab() {
        let mut pt = PageTable::new();
        for vpn in 1..10u64 {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.len(), 9);
        assert_eq!(pt.sorted_vpns(), (1..10).collect::<Vec<u64>>());
        assert_eq!(pt.slabs.len(), 1, "sequential maps coalesce into one slab");
    }

    #[test]
    fn descending_maps_coalesce_into_one_slab() {
        // Regression: grow_for only merged with the preceding slab, so a
        // descending map sequence fragmented into one slab per page.
        let mut pt = PageTable::new();
        for vpn in (1..10u64).rev() {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.len(), 9);
        assert_eq!(pt.sorted_vpns(), (1..10).collect::<Vec<u64>>());
        assert_eq!(pt.slabs.len(), 1, "descending maps coalesce into one slab");
        assert_stats_consistent(&pt);
    }

    #[test]
    fn bridging_map_merges_both_neighbours() {
        let mut pt = PageTable::new();
        // Build two separated runs crossing a word boundary, then bridge.
        for vpn in 0..70u64 {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        for vpn in 71..140u64 {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.slabs.len(), 2);
        pt.map(70, Pte::present_rw(FrameId(70)));
        assert_eq!(pt.slabs.len(), 1, "bridge page stitches the two slabs");
        assert_eq!(pt.len(), 140);
        let got: Vec<u64> = pt.iter().map(|(v, _)| v).collect();
        assert_eq!(got, (0..140).collect::<Vec<u64>>());
        for vpn in 0..140u64 {
            assert_eq!(pt.get(vpn).unwrap().frame, FrameId(vpn), "vpn {vpn}");
        }
        assert_stats_consistent(&pt);
    }

    #[test]
    fn unmap_keeps_reservation() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 4));
        pt.map(1, Pte::present_rw(FrameId(1)));
        pt.unmap(1);
        assert!(pt.is_empty());
        assert_eq!(pt.slabs.len(), 1, "unmap must not drop the extent");
    }

    #[test]
    fn hint_survives_unrelated_reserve_and_release() {
        // Regression: reserve_range/release_range used to clobber the hint
        // to slab 0, evicting the hot VMA's cache on every unrelated
        // mmap/munmap. The hint must track its slab through shifts and only
        // invalidate when that slab itself is removed.
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(100, 110));
        pt.map(105, Pte::present_rw(FrameId(1)));
        assert!(pt.get(105).is_some());
        let hot = pt.hint.get();
        assert_eq!(pt.slabs[hot].base, 100);

        // An unrelated reservation *before* the hot slab shifts it up.
        pt.reserve_range(PageRange::new(0, 10));
        assert_eq!(pt.slabs[pt.hint.get()].base, 100, "hint follows its slab");

        // An unrelated reservation *after* it leaves the hint alone.
        pt.reserve_range(PageRange::new(200, 210));
        assert_eq!(pt.slabs[pt.hint.get()].base, 100);

        // Releasing the earlier slab shifts the hint back down.
        pt.release_range(PageRange::new(0, 10));
        assert_eq!(pt.slabs[pt.hint.get()].base, 100);

        // Releasing the hinted slab itself invalidates the hint; lookups
        // still work through the binary-search fallback.
        pt.release_range(PageRange::new(100, 110));
        assert_eq!(pt.hint.get(), NO_HINT);
        assert!(pt.get(105).is_none());
        pt.map(205, Pte::present_rw(FrameId(2)));
        assert_eq!(pt.get(205).unwrap().frame, FrameId(2));
    }

    #[test]
    fn huge_conversion_stores_heads_only() {
        let pages = crate::PAGES_PER_HUGE;
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 2 * pages));
        assert!(pt.convert_range_to_huge(PageRange::new(0, 2 * pages)));
        let mut head = Pte::present_rw(FrameId(7));
        head.flags |= PteFlags::HUGE;
        assert_eq!(pt.map(0, head), None);
        assert_eq!(pt.map(pages, head), None);
        assert_eq!(pt.len(), 2, "one record per huge page");
        assert_eq!(pt.stats().huge, 2);
        assert!(pt.get(1).is_none(), "non-head pages carry no entry");
        assert!(pt.get(pages - 1).is_none());
        assert_eq!(pt.sorted_vpns(), vec![0, pages]);
        let removed = pt.release_range(PageRange::new(0, 2 * pages));
        assert_eq!(removed.len(), 2);
        assert!(pt.is_empty());
        assert_stats_consistent(&pt);
    }

    #[test]
    fn huge_conversion_refuses_populated_or_misaligned() {
        let pages = crate::PAGES_PER_HUGE;
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, pages));
        pt.map(3, Pte::present_rw(FrameId(1)));
        assert!(!pt.convert_range_to_huge(PageRange::new(0, pages)));
        assert_eq!(pt.get(3).unwrap().frame, FrameId(1));

        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 10));
        assert!(!pt.convert_range_to_huge(PageRange::new(0, 10)));
    }

    #[test]
    fn sync_from_matches_generic_semantics() {
        let mut primary = PageTable::new();
        let mut replica = PageTable::new();
        primary.reserve_range(PageRange::new(0, 192));
        replica.reserve_range(PageRange::new(0, 192));
        for vpn in [1u64, 64, 65, 100, 130] {
            primary.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        for vpn in [1u64, 64, 70, 130] {
            replica.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        primary.get_mut(130).unwrap().frame = FrameId(999);
        // 70 unmapped, 65 and 100 installed, 130 overwritten.
        let changed = replica.sync_from(&primary, PageRange::new(0, 192));
        assert_eq!(changed, 4);
        assert_eq!(replica.sorted_vpns(), vec![1, 64, 65, 100, 130]);
        assert_eq!(replica.get(130).unwrap().frame, FrameId(999));
        assert_eq!(replica.sync_from(&primary, PageRange::new(0, 192)), 0);
        assert_stats_consistent(&replica);
    }

    #[test]
    fn sync_from_adopts_whole_slabs_into_gaps() {
        let mut primary = PageTable::new();
        for vpn in 0..100u64 {
            primary.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let mut replica = PageTable::new();
        let changed = replica.sync_from(&primary, PageRange::new(0, 1000));
        assert_eq!(changed, 100);
        assert_eq!(replica.len(), 100);
        assert_eq!(replica.sorted_vpns(), primary.sorted_vpns());
        assert_stats_consistent(&replica);
    }
}
