//! The software page table.
//!
//! A flat map from virtual page number to [`Pte`]. The real kernel uses a
//! radix tree; a hash map gives the same semantics with O(1) expected
//! lookups, and the *cost* of page-table walks is charged separately by the
//! kernel layer's cost model, so the host data structure choice does not
//! leak into results.

use crate::pte::Pte;
use crate::FrameId;
use numa_sim::FxHashMap;

/// Map from virtual page number to page-table entry.
///
/// Keyed with the fixed-seed [`numa_sim::FxHasher`]: the table is hit on
/// every simulated page touch, and its iteration order is never allowed to
/// reach results (ordered walks go through [`PageTable::sorted_vpns`]).
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: FxHashMap<u64, Pte>,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Look up the PTE for `vpn`.
    pub fn get(&self, vpn: u64) -> Option<&Pte> {
        self.entries.get(&vpn)
    }

    /// Mutable PTE lookup.
    pub fn get_mut(&mut self, vpn: u64) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Install a mapping. Returns the previous entry if one existed
    /// (callers that expect a fresh mapping assert on `None`).
    pub fn map(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        self.entries.insert(vpn, pte)
    }

    /// Remove a mapping, returning it.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Is `vpn` mapped (present or not)?
    pub fn is_mapped(&self, vpn: u64) -> bool {
        self.entries.contains_key(&vpn)
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(vpn, pte)` pairs in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Pte)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// All mapped vpns, sorted — used by `migrate_pages`, which walks the
    /// address space in order (that ordered walk is why the paper measures
    /// better locality for it than for `move_pages`, §4.2).
    pub fn sorted_vpns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.entries.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Every frame currently referenced by an entry (for leak checks).
    pub fn referenced_frames(&self) -> Vec<FrameId> {
        self.entries.values().map(|p| p.frame).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        assert_eq!(pt.map(5, Pte::present_rw(FrameId(1))), None);
        assert!(pt.is_mapped(5));
        assert_eq!(pt.get(5).unwrap().frame, FrameId(1));
        let old = pt.unmap(5).unwrap();
        assert_eq!(old.frame, FrameId(1));
        assert!(!pt.is_mapped(5));
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new();
        pt.map(1, Pte::present_rw(FrameId(1)));
        let prev = pt.map(1, Pte::present_rw(FrameId(2)));
        assert_eq!(prev.unwrap().frame, FrameId(1));
        assert_eq!(pt.get(1).unwrap().frame, FrameId(2));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn get_mut_allows_flag_updates() {
        let mut pt = PageTable::new();
        pt.map(9, Pte::present_rw(FrameId(3)));
        pt.get_mut(9).unwrap().mark_next_touch();
        assert!(pt.get(9).unwrap().flags.contains(PteFlags::NEXT_TOUCH));
    }

    #[test]
    fn sorted_vpns_sorted() {
        let mut pt = PageTable::new();
        for vpn in [9u64, 2, 7, 4] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.sorted_vpns(), vec![2, 4, 7, 9]);
    }

    #[test]
    fn referenced_frames_complete() {
        let mut pt = PageTable::new();
        pt.map(1, Pte::present_rw(FrameId(10)));
        pt.map(2, Pte::present_rw(FrameId(20)));
        let mut frames = pt.referenced_frames();
        frames.sort();
        assert_eq!(frames, vec![FrameId(10), FrameId(20)]);
    }
}
