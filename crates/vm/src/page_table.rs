//! The software page table.
//!
//! Dense per-extent PTE slabs: the table is a sorted vector of
//! non-overlapping extents, each owning a contiguous `Vec` of PTE slots
//! indexed by `vpn - base`. `AddressSpace` reserves one slab per VMA at
//! `mmap` time, so the access hot path (`get`/`get_mut`) is a hint-cached
//! binary search over a handful of extents plus one indexed load, and batch
//! walks (`walk_range`/`update_range`) scan contiguous slices instead of
//! issuing one hash probe per page — the same representation fix the paper
//! applies to the kernel's batch metadata, here applied to the host.
//!
//! The real kernel uses a radix tree; dense slabs give the same semantics,
//! and the *cost* of page-table walks is charged separately by the kernel
//! layer's cost model, so the host data structure choice does not leak into
//! results. Iteration order is ascending vpn by construction (no
//! sort-on-demand): ordered walks like `migrate_pages` get their sequence
//! directly from the layout.

use crate::addr::PageRange;
use crate::pte::Pte;
use crate::FrameId;
use std::cell::Cell;

/// One contiguous extent of PTE slots.
#[derive(Debug, Clone)]
struct Slab {
    /// First vpn covered.
    base: u64,
    /// One slot per page; `None` = reserved but unmapped.
    slots: Vec<Option<Pte>>,
    /// Mapped slots in this slab.
    live: usize,
}

impl Slab {
    fn new(base: u64, pages: usize) -> Self {
        debug_assert!(pages > 0, "empty slab");
        Slab {
            base,
            slots: vec![None; pages],
            live: 0,
        }
    }

    /// One past the last vpn covered.
    fn end(&self) -> u64 {
        self.base + self.slots.len() as u64
    }
}

/// Map from virtual page number to page-table entry, stored as dense
/// per-extent slabs.
///
/// Extents are created by [`PageTable::reserve_range`] (called for every
/// VMA insertion) or on demand by [`PageTable::map`] for standalone use;
/// they are released by [`PageTable::release_range`] (`munmap`). Unmapping
/// a single page keeps its reservation, matching a VMA whose page was
/// merely migrated away or never touched.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Extents sorted by `base`, non-overlapping.
    slabs: Vec<Slab>,
    /// Total mapped entries across all slabs.
    live: usize,
    /// Index of the last slab that satisfied a lookup — page touches are
    /// overwhelmingly local to one VMA, so this hint usually short-circuits
    /// the binary search. Purely a host-side cache; never observable.
    hint: Cell<usize>,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Index of the slab covering `vpn`, if any.
    #[inline]
    fn slab_index(&self, vpn: u64) -> Option<usize> {
        let hint = self.hint.get();
        if let Some(s) = self.slabs.get(hint) {
            if vpn >= s.base && vpn < s.end() {
                return Some(hint);
            }
        }
        let idx = self.slabs.partition_point(|s| s.base <= vpn);
        if idx == 0 {
            return None;
        }
        let s = &self.slabs[idx - 1];
        if vpn < s.end() {
            self.hint.set(idx - 1);
            Some(idx - 1)
        } else {
            None
        }
    }

    /// Index of the first slab whose extent ends after `vpn` (i.e. the
    /// first slab that could intersect a range starting at `vpn`).
    fn first_slab_from(&self, vpn: u64) -> usize {
        let idx = self.slabs.partition_point(|s| s.base <= vpn);
        if idx > 0 && self.slabs[idx - 1].end() > vpn {
            idx - 1
        } else {
            idx
        }
    }

    /// Look up the PTE for `vpn`.
    #[inline]
    pub fn get(&self, vpn: u64) -> Option<&Pte> {
        let i = self.slab_index(vpn)?;
        let s = &self.slabs[i];
        s.slots[(vpn - s.base) as usize].as_ref()
    }

    /// Mutable PTE lookup.
    #[inline]
    pub fn get_mut(&mut self, vpn: u64) -> Option<&mut Pte> {
        let i = self.slab_index(vpn)?;
        let s = &mut self.slabs[i];
        s.slots[(vpn - s.base) as usize].as_mut()
    }

    /// Install a mapping. Returns the previous entry if one existed
    /// (callers that expect a fresh mapping assert on `None`).
    ///
    /// Mapping a vpn outside every reserved extent grows the table: the
    /// preceding slab is extended when it ends exactly at `vpn`, otherwise
    /// a fresh one-page slab is created. Standalone users (tests, reference
    /// models) therefore never need to reserve explicitly.
    pub fn map(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        let i = match self.slab_index(vpn) {
            Some(i) => i,
            None => self.grow_for(vpn),
        };
        let s = &mut self.slabs[i];
        let prev = s.slots[(vpn - s.base) as usize].replace(pte);
        if prev.is_none() {
            s.live += 1;
            self.live += 1;
        }
        prev
    }

    /// Make room for an unreserved `vpn`; returns the slab index covering it.
    fn grow_for(&mut self, vpn: u64) -> usize {
        let idx = self.slabs.partition_point(|s| s.base <= vpn);
        if idx > 0 && self.slabs[idx - 1].end() == vpn {
            // Extend the adjacent slab by one page. The next slab cannot
            // start at `vpn` (it would already cover it), so no overlap.
            self.slabs[idx - 1].slots.push(None);
            idx - 1
        } else {
            self.slabs.insert(idx, Slab::new(vpn, 1));
            idx
        }
    }

    /// Remove a mapping, returning it. The slot's reservation is kept —
    /// only [`PageTable::release_range`] drops extent storage.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        let i = self.slab_index(vpn)?;
        let s = &mut self.slabs[i];
        let prev = s.slots[(vpn - s.base) as usize].take();
        if prev.is_some() {
            s.live -= 1;
            self.live -= 1;
        }
        prev
    }

    /// Pre-size slots for every page of `range` (called for each VMA
    /// insertion). Gaps between existing extents are filled with fresh
    /// slabs; already-covered pages are left untouched.
    pub fn reserve_range(&mut self, range: PageRange) {
        let mut cursor = range.start_vpn;
        while cursor < range.end_vpn {
            let idx = self.slabs.partition_point(|s| s.base <= cursor);
            if idx > 0 && self.slabs[idx - 1].end() > cursor {
                cursor = self.slabs[idx - 1].end();
                continue;
            }
            let next_base = self.slabs.get(idx).map_or(u64::MAX, |s| s.base);
            let end = range.end_vpn.min(next_base);
            self.slabs
                .insert(idx, Slab::new(cursor, (end - cursor) as usize));
            cursor = end;
        }
        self.hint.set(0);
    }

    /// Drop every mapping in `range`, returning the removed entries in
    /// ascending vpn order, and release the storage of extents that lie
    /// entirely inside the range (`munmap`). Extents straddling a boundary
    /// keep their out-of-range reservation.
    pub fn release_range(&mut self, range: PageRange) -> Vec<Pte> {
        let mut removed = Vec::new();
        if range.is_empty() {
            return removed;
        }
        let mut i = self.first_slab_from(range.start_vpn);
        while i < self.slabs.len() {
            let s = &mut self.slabs[i];
            if s.base >= range.end_vpn {
                break;
            }
            if s.base >= range.start_vpn && s.end() <= range.end_vpn {
                // Fully covered: collect and drop the whole slab.
                let s = self.slabs.remove(i);
                self.live -= s.live;
                removed.extend(s.slots.into_iter().flatten());
                continue; // do not advance: next slab shifted into `i`
            }
            let lo = range.start_vpn.max(s.base) - s.base;
            let hi = (range.end_vpn.min(s.end()) - s.base) as usize;
            for slot in &mut s.slots[lo as usize..hi] {
                if let Some(pte) = slot.take() {
                    s.live -= 1;
                    self.live -= 1;
                    removed.push(pte);
                }
            }
            i += 1;
        }
        self.hint.set(0);
        removed
    }

    /// Is `vpn` mapped (present or not)?
    pub fn is_mapped(&self, vpn: u64) -> bool {
        self.get(vpn).is_some()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over `(vpn, pte)` pairs in ascending vpn order (the slab
    /// layout is sorted, so order costs nothing).
    pub fn iter(&self) -> WalkRange<'_> {
        WalkRange {
            slabs: &self.slabs,
            slab_idx: 0,
            slot_idx: 0,
            end_vpn: u64::MAX,
        }
    }

    /// Iterate over the mapped `(vpn, pte)` pairs of `range` in ascending
    /// vpn order, scanning slabs as contiguous slices — the batch-walk
    /// primitive behind `migrate_pages`, `madvise`, `mprotect` and the
    /// tier promotion scan.
    pub fn walk_range(&self, range: PageRange) -> WalkRange<'_> {
        if range.is_empty() {
            return WalkRange {
                slabs: &[],
                slab_idx: 0,
                slot_idx: 0,
                end_vpn: 0,
            };
        }
        let slab_idx = self.first_slab_from(range.start_vpn);
        let slot_idx = self
            .slabs
            .get(slab_idx)
            .map_or(0, |s| range.start_vpn.saturating_sub(s.base) as usize);
        WalkRange {
            slabs: &self.slabs,
            slab_idx,
            slot_idx,
            end_vpn: range.end_vpn,
        }
    }

    /// Apply `f` to every mapped entry of `range` in ascending vpn order.
    /// The mutable counterpart of [`PageTable::walk_range`].
    pub fn update_range<F: FnMut(u64, &mut Pte)>(&mut self, range: PageRange, mut f: F) {
        if range.is_empty() {
            return;
        }
        let start = self.first_slab_from(range.start_vpn);
        for s in &mut self.slabs[start..] {
            if s.base >= range.end_vpn {
                break;
            }
            let lo = range.start_vpn.max(s.base) - s.base;
            let hi = (range.end_vpn.min(s.end()) - s.base) as usize;
            for (off, slot) in s.slots[lo as usize..hi].iter_mut().enumerate() {
                if let Some(pte) = slot.as_mut() {
                    f(s.base + lo + off as u64, pte);
                }
            }
        }
    }

    /// All mapped vpns, sorted — used by `migrate_pages`, which walks the
    /// address space in order (that ordered walk is why the paper measures
    /// better locality for it than for `move_pages`, §4.2). With dense
    /// slabs this is a plain ordered collect, no sort.
    pub fn sorted_vpns(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.live);
        v.extend(self.iter().map(|(vpn, _)| vpn));
        v
    }

    /// Every frame currently referenced by an entry (for leak checks).
    pub fn referenced_frames(&self) -> Vec<FrameId> {
        self.iter().map(|(_, p)| p.frame).collect()
    }
}

/// Ordered iterator over the mapped entries of a vpn range.
/// See [`PageTable::walk_range`].
#[derive(Debug)]
pub struct WalkRange<'a> {
    slabs: &'a [Slab],
    slab_idx: usize,
    slot_idx: usize,
    end_vpn: u64,
}

impl<'a> Iterator for WalkRange<'a> {
    type Item = (u64, &'a Pte);

    fn next(&mut self) -> Option<(u64, &'a Pte)> {
        loop {
            let s = self.slabs.get(self.slab_idx)?;
            if s.base >= self.end_vpn {
                return None;
            }
            let limit = ((self.end_vpn.min(s.end()) - s.base) as usize).min(s.slots.len());
            while self.slot_idx < limit {
                let i = self.slot_idx;
                self.slot_idx += 1;
                if let Some(pte) = s.slots[i].as_ref() {
                    return Some((s.base + i as u64, pte));
                }
            }
            self.slab_idx += 1;
            self.slot_idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        assert_eq!(pt.map(5, Pte::present_rw(FrameId(1))), None);
        assert!(pt.is_mapped(5));
        assert_eq!(pt.get(5).unwrap().frame, FrameId(1));
        let old = pt.unmap(5).unwrap();
        assert_eq!(old.frame, FrameId(1));
        assert!(!pt.is_mapped(5));
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new();
        pt.map(1, Pte::present_rw(FrameId(1)));
        let prev = pt.map(1, Pte::present_rw(FrameId(2)));
        assert_eq!(prev.unwrap().frame, FrameId(1));
        assert_eq!(pt.get(1).unwrap().frame, FrameId(2));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn get_mut_allows_flag_updates() {
        let mut pt = PageTable::new();
        pt.map(9, Pte::present_rw(FrameId(3)));
        pt.get_mut(9).unwrap().mark_next_touch();
        assert!(pt.get(9).unwrap().flags.contains(PteFlags::NEXT_TOUCH));
    }

    #[test]
    fn sorted_vpns_sorted() {
        let mut pt = PageTable::new();
        for vpn in [9u64, 2, 7, 4] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.sorted_vpns(), vec![2, 4, 7, 9]);
    }

    #[test]
    fn referenced_frames_complete() {
        let mut pt = PageTable::new();
        pt.map(1, Pte::present_rw(FrameId(10)));
        pt.map(2, Pte::present_rw(FrameId(20)));
        let mut frames = pt.referenced_frames();
        frames.sort();
        assert_eq!(frames, vec![FrameId(10), FrameId(20)]);
    }

    #[test]
    fn reserve_then_map_uses_the_slab() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(100, 110));
        assert!(pt.is_empty(), "reservation maps nothing");
        assert_eq!(pt.map(105, Pte::present_rw(FrameId(1))), None);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(105).unwrap().frame, FrameId(1));
        assert!(pt.get(104).is_none());
    }

    #[test]
    fn reserve_fills_only_gaps() {
        let mut pt = PageTable::new();
        pt.map(5, Pte::present_rw(FrameId(1)));
        // Overlapping reservation must not disturb the existing entry.
        pt.reserve_range(PageRange::new(0, 10));
        assert_eq!(pt.get(5).unwrap().frame, FrameId(1));
        assert_eq!(pt.len(), 1);
        pt.map(0, Pte::present_rw(FrameId(2)));
        pt.map(9, Pte::present_rw(FrameId(3)));
        assert_eq!(pt.sorted_vpns(), vec![0, 5, 9]);
    }

    #[test]
    fn release_returns_entries_in_order_and_drops_storage() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(10, 20));
        for vpn in [12u64, 17, 15] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let removed = pt.release_range(PageRange::new(10, 20));
        let frames: Vec<FrameId> = removed.iter().map(|p| p.frame).collect();
        assert_eq!(frames, vec![FrameId(12), FrameId(15), FrameId(17)]);
        assert!(pt.is_empty());
        // The extent is gone: mapping again auto-creates fresh storage.
        assert_eq!(pt.map(12, Pte::present_rw(FrameId(1))), None);
    }

    #[test]
    fn release_keeps_out_of_range_reservation() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 10));
        pt.map(2, Pte::present_rw(FrameId(2)));
        pt.map(7, Pte::present_rw(FrameId(7)));
        let removed = pt.release_range(PageRange::new(0, 5));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].frame, FrameId(2));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(7).unwrap().frame, FrameId(7));
    }

    #[test]
    fn walk_range_yields_mapped_subrange_in_order() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 32));
        for vpn in [1u64, 4, 5, 9, 30] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let got: Vec<u64> = pt
            .walk_range(PageRange::new(4, 30))
            .map(|(v, _)| v)
            .collect();
        assert_eq!(got, vec![4, 5, 9]);
        let all: Vec<u64> = pt.iter().map(|(v, _)| v).collect();
        assert_eq!(all, vec![1, 4, 5, 9, 30]);
    }

    #[test]
    fn walk_range_spans_multiple_slabs() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 4));
        pt.reserve_range(PageRange::new(100, 104));
        pt.map(2, Pte::present_rw(FrameId(2)));
        pt.map(101, Pte::present_rw(FrameId(101)));
        let got: Vec<u64> = pt
            .walk_range(PageRange::new(0, 1000))
            .map(|(v, _)| v)
            .collect();
        assert_eq!(got, vec![2, 101]);
    }

    #[test]
    fn update_range_mutates_only_mapped_pages() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 16));
        for vpn in [3u64, 8, 12] {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        let mut touched = Vec::new();
        pt.update_range(PageRange::new(0, 10), |vpn, pte| {
            pte.mark_next_touch();
            touched.push(vpn);
        });
        assert_eq!(touched, vec![3, 8]);
        assert!(pt.get(3).unwrap().is_next_touch());
        assert!(pt.get(8).unwrap().is_next_touch());
        assert!(!pt.get(12).unwrap().is_next_touch());
    }

    #[test]
    fn adjacent_unreserved_maps_extend_one_slab() {
        let mut pt = PageTable::new();
        for vpn in 1..10u64 {
            pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        }
        assert_eq!(pt.len(), 9);
        assert_eq!(pt.sorted_vpns(), (1..10).collect::<Vec<u64>>());
        assert_eq!(pt.slabs.len(), 1, "sequential maps coalesce into one slab");
    }

    #[test]
    fn unmap_keeps_reservation() {
        let mut pt = PageTable::new();
        pt.reserve_range(PageRange::new(0, 4));
        pt.map(1, Pte::present_rw(FrameId(1)));
        pt.unmap(1);
        assert!(pt.is_empty());
        assert_eq!(pt.slabs.len(), 1, "unmap must not drop the extent");
    }
}
