//! Virtual memory areas.
//!
//! A [`Vma`] is a contiguous range of pages with uniform protection, kind
//! and placement policy — the same bookkeeping unit the Linux kernel uses.
//! `mprotect` may split VMAs; the [`crate::AddressSpace`] owns that logic.

use crate::addr::PageRange;
use crate::policy::MemPolicy;
use serde::{Deserialize, Serialize};

/// Access protection of a VMA (the `PROT_*` bits that matter here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protection {
    /// No access: any touch faults (`PROT_NONE`) — the user-space
    /// next-touch trick (paper §3.2) depends on this.
    None,
    /// Read-only.
    ReadOnly,
    /// Read + write.
    ReadWrite,
}

impl Protection {
    /// Does this protection allow an access of the given kind?
    pub fn permits(self, write: bool) -> bool {
        match self {
            Protection::None => false,
            Protection::ReadOnly => !write,
            Protection::ReadWrite => true,
        }
    }
}

/// What backs a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaKind {
    /// Private anonymous memory — the only kind the paper's kernel
    /// next-touch supports ("first supporting shared areas and file
    /// mappings instead of only private anonymous pages", §6).
    PrivateAnonymous,
    /// Shared anonymous memory (extension).
    SharedAnonymous,
    /// A file mapping (extension).
    File,
}

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vma {
    /// The pages this area spans.
    pub range: PageRange,
    /// Uniform protection for the whole area.
    pub prot: Protection,
    /// Backing kind.
    pub kind: VmaKind,
    /// Placement policy for pages faulted in within this area.
    pub policy: MemPolicy,
    /// True when the area is mapped with huge pages (extension).
    pub huge: bool,
    /// Free-form tag so runtimes can find their own regions (the user-space
    /// next-touch library tags the regions it protects).
    pub tag: u64,
}

impl Vma {
    /// A private anonymous RW area with default (first-touch) policy.
    pub fn anon(range: PageRange) -> Self {
        Vma {
            range,
            prot: Protection::ReadWrite,
            kind: VmaKind::PrivateAnonymous,
            policy: MemPolicy::FirstTouch,
            huge: false,
            tag: 0,
        }
    }

    /// Split this VMA at `vpn`, returning the right half. `vpn` must lie
    /// strictly inside the range.
    pub fn split_at(&mut self, vpn: u64) -> Vma {
        assert!(
            vpn > self.range.start_vpn && vpn < self.range.end_vpn,
            "split point {vpn} must be strictly inside {:?}",
            self.range
        );
        let right = Vma {
            range: PageRange::new(vpn, self.range.end_vpn),
            ..self.clone()
        };
        self.range = PageRange::new(self.range.start_vpn, vpn);
        right
    }

    /// Can this VMA merge with `other` (adjacent and attribute-identical)?
    pub fn can_merge(&self, other: &Vma) -> bool {
        self.range.end_vpn == other.range.start_vpn
            && self.prot == other.prot
            && self.kind == other.kind
            && self.policy == other.policy
            && self.huge == other.huge
            && self.tag == other.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_permits() {
        assert!(!Protection::None.permits(false));
        assert!(!Protection::None.permits(true));
        assert!(Protection::ReadOnly.permits(false));
        assert!(!Protection::ReadOnly.permits(true));
        assert!(Protection::ReadWrite.permits(true));
    }

    #[test]
    fn split_preserves_attributes() {
        let mut v = Vma::anon(PageRange::new(0, 10));
        v.tag = 42;
        let right = v.split_at(4);
        assert_eq!(v.range, PageRange::new(0, 4));
        assert_eq!(right.range, PageRange::new(4, 10));
        assert_eq!(right.tag, 42);
        assert_eq!(right.prot, v.prot);
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn split_at_boundary_panics() {
        let mut v = Vma::anon(PageRange::new(0, 10));
        v.split_at(0);
    }

    #[test]
    fn merge_compatibility() {
        let a = Vma::anon(PageRange::new(0, 5));
        let b = Vma::anon(PageRange::new(5, 9));
        assert!(a.can_merge(&b));
        let mut c = Vma::anon(PageRange::new(9, 12));
        c.prot = Protection::None;
        assert!(!b.can_merge(&c));
        // Non-adjacent.
        let d = Vma::anon(PageRange::new(20, 30));
        assert!(!a.can_merge(&d));
    }
}
