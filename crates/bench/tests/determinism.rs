//! Determinism regression: the experiment harness must regenerate
//! byte-identical tables from the same seed — the property every
//! reproduced figure in this repo rests on (DESIGN.md §7).

use numa_bench::{tiering_capacity_table, tiering_mechanism_table};

#[test]
fn same_seed_gives_byte_identical_mechanism_table() {
    let a = tiering_mechanism_table(&[2], 128, 32, 42).to_string();
    let b = tiering_mechanism_table(&[2], 128, 32, 42).to_string();
    assert_eq!(a, b);
    let csv_a = tiering_mechanism_table(&[2], 128, 32, 42).to_csv();
    let csv_b = tiering_mechanism_table(&[2], 128, 32, 42).to_csv();
    assert_eq!(csv_a, csv_b);
}

#[test]
fn different_seeds_change_the_interleaving() {
    // Not a strict requirement page-for-page, but across two seeds the
    // shuffled writer orders virtually always shift some timing; if this
    // ever fails the seed is not reaching the workload.
    let a = tiering_mechanism_table(&[4], 128, 64, 1).to_csv();
    let b = tiering_mechanism_table(&[4], 128, 64, 2).to_csv();
    assert_ne!(a, b, "seed must actually vary the workload");
}

#[test]
fn capacity_sweep_is_deterministic() {
    let a = tiering_capacity_table(&[256, 1024], 128, 3).to_string();
    let b = tiering_capacity_table(&[256, 1024], 128, 3).to_string();
    assert_eq!(a, b);
}

#[test]
fn traced_episode_is_byte_identical_for_same_seed() {
    let a = numa_bench::traced_next_touch_episode(42);
    let b = numa_bench::traced_next_touch_episode(42);
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "Chrome trace export must be byte-identical across runs with one seed"
    );
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.breakdown, b.breakdown);
}

#[test]
fn traced_episode_varies_with_seed() {
    let a = numa_bench::traced_next_touch_episode(1);
    let b = numa_bench::traced_next_touch_episode(2);
    assert_ne!(
        a.chrome_json, b.chrome_json,
        "seed must reach the traced workload's access order"
    );
}
