//! Determinism regression: the experiment harness must regenerate
//! byte-identical tables from the same seed — the property every
//! reproduced figure in this repo rests on (DESIGN.md §7) — and the host
//! performance machinery (the engine's batched micro-op fast path, the
//! parallel sweep runner) must be invisible in every reported number
//! (DESIGN.md §10).

use numa_bench::{tiering_capacity_table, tiering_mechanism_table};
use numa_migrate::experiments::fig7;
use numa_migrate::machine::{MemAccessKind, Op, ThreadSpec};
use numa_migrate::rt::{setup, Buffer};
use numa_migrate::topology::NodeId;
use numa_migrate::vm::PAGE_SIZE;
use numa_migrate::NumaSystem;

#[test]
fn same_seed_gives_byte_identical_mechanism_table() {
    let a = tiering_mechanism_table(&[2], 128, 32, 42, 1).to_string();
    let b = tiering_mechanism_table(&[2], 128, 32, 42, 1).to_string();
    assert_eq!(a, b);
    let csv_a = tiering_mechanism_table(&[2], 128, 32, 42, 1).to_csv();
    let csv_b = tiering_mechanism_table(&[2], 128, 32, 42, 1).to_csv();
    assert_eq!(csv_a, csv_b);
}

#[test]
fn different_seeds_change_the_interleaving() {
    // Not a strict requirement page-for-page, but across two seeds the
    // shuffled writer orders virtually always shift some timing; if this
    // ever fails the seed is not reaching the workload.
    let a = tiering_mechanism_table(&[4], 128, 64, 1, 1).to_csv();
    let b = tiering_mechanism_table(&[4], 128, 64, 2, 1).to_csv();
    assert_ne!(a, b, "seed must actually vary the workload");
}

#[test]
fn capacity_sweep_is_deterministic() {
    let a = tiering_capacity_table(&[256, 1024], 128, 3, 1).to_string();
    let b = tiering_capacity_table(&[256, 1024], 128, 3, 1).to_string();
    assert_eq!(a, b);
}

#[test]
fn traced_episode_is_byte_identical_for_same_seed() {
    let a = numa_bench::traced_next_touch_episode(42);
    let b = numa_bench::traced_next_touch_episode(42);
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "Chrome trace export must be byte-identical across runs with one seed"
    );
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.breakdown, b.breakdown);
}

#[test]
fn traced_episode_varies_with_seed() {
    let a = numa_bench::traced_next_touch_episode(1);
    let b = numa_bench::traced_next_touch_episode(2);
    assert_ne!(
        a.chrome_json, b.chrome_json,
        "seed must reach the traced workload's access order"
    );
}

#[test]
fn parallel_sweep_matches_sequential_byte_for_byte() {
    // The sweep runner's determinism contract: any --jobs value yields
    // the same rows in the same order, so rendered tables (and therefore
    // the --json files built from them) are byte-identical.
    let seq = tiering_mechanism_table(&[1, 2, 4], 128, 32, 7, 1);
    let par = tiering_mechanism_table(&[1, 2, 4], 128, 32, 7, 4);
    assert_eq!(seq.to_string(), par.to_string());
    assert_eq!(seq.to_csv(), par.to_csv());

    let seq = fig7::run_jobs(&[64, 256], 4, 1);
    let par = fig7::run_jobs(&[64, 256], 4, 3);
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));
}

/// One lazy-migration episode (the fig7 shape: mark, barrier, `threads`
/// workers touch disjoint chunks) with the engine fast path forced on or
/// off. Returns everything a run reports: makespan, cost breakdown,
/// counters, and how many micro-ops the fast path coalesced.
fn lazy_episode(fast_path: bool, threads: usize) -> (u64, String, String, u64) {
    lazy_episode_cfg(fast_path, threads, false)
}

fn lazy_episode_cfg(fast_path: bool, threads: usize, trace: bool) -> (u64, String, String, u64) {
    let mut m = NumaSystem::new().build();
    m.set_fast_path(fast_path);
    if trace {
        m.enable_trace(1 << 16);
    }
    let buf = Buffer::alloc(&mut m, 512 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let cores = m.topology().cores_of_node(NodeId(1));
    let chunks = buf.split_pages(threads);
    let n = chunks.len();
    let specs = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let mut ops = Vec::new();
            if i == 0 {
                ops.push(Op::MadviseNextTouch {
                    range: buf.page_range(),
                });
            }
            ops.push(Op::Barrier(0));
            // Distinct stagger per thread: with perfectly symmetric threads
            // every micro-op completion ties in virtual time and the fast
            // path's strict-inequality guard (correctly) never fires.
            ops.push(Op::ComputeNs(1 + i as u64 * 1_717));
            ops.push(Op::Access {
                addr: chunk.addr,
                bytes: chunk.len,
                traffic: 0,
                write: true,
                kind: MemAccessKind::Stream,
            });
            ThreadSpec::scripted(cores[i % cores.len()], ops)
        })
        .collect();
    let r = m.run(specs, &[n]);
    (
        r.makespan.ns(),
        format!("{:?}", r.stats.breakdown),
        format!("{:?}", r.stats.counters),
        m.fastpath_micros,
    )
}

#[test]
fn fast_path_toggle_is_invisible_in_results() {
    // The tentpole equivalence guarantee: batching micro-ops through the
    // lookahead fast path must not move a single virtual-time number —
    // makespan, every breakdown component, every counter — under
    // contention (4 threads convoying on the page-table lock)...
    let (mk_on, bd_on, ct_on, _) = lazy_episode(true, 4);
    let (mk_off, bd_off, ct_off, fp_off) = lazy_episode(false, 4);
    assert_eq!(mk_on, mk_off, "fast path changed the makespan");
    assert_eq!(bd_on, bd_off, "fast path changed the cost breakdown");
    assert_eq!(ct_on, ct_off, "fast path changed the event counters");
    assert_eq!(fp_off, 0, "disabled fast path still batched micro-ops");

    // ...and uncontended, where the empty ready queue guarantees the
    // lookahead window stays open and batching actually happens.
    let (mk_on, bd_on, ct_on, fp_on) = lazy_episode(true, 1);
    let (mk_off, bd_off, ct_off, fp_off) = lazy_episode(false, 1);
    assert_eq!(mk_on, mk_off, "fast path changed the solo makespan");
    assert_eq!(bd_on, bd_off, "fast path changed the solo breakdown");
    assert_eq!(ct_on, ct_off, "fast path changed the solo counters");
    assert!(fp_on > 0, "fast path never engaged on a solo episode");
    assert_eq!(fp_off, 0, "disabled fast path still batched micro-ops");
}

#[test]
fn tracing_toggle_is_invisible_in_results() {
    // Hot-loop trace recording must be observation only: a disabled
    // `Trace` costs one branch per event site (no argument formatting, no
    // breakdown snapshotting), and *enabling* it must not move a single
    // virtual-time number — same makespan, same cost breakdown, same
    // counters, traced or not, with and without the fast path.
    for fast_path in [true, false] {
        let (mk_off, bd_off, ct_off, _) = lazy_episode_cfg(fast_path, 4, false);
        let (mk_on, bd_on, ct_on, _) = lazy_episode_cfg(fast_path, 4, true);
        assert_eq!(mk_on, mk_off, "tracing changed the makespan");
        assert_eq!(bd_on, bd_off, "tracing changed the cost breakdown");
        assert_eq!(ct_on, ct_off, "tracing changed the event counters");
    }
}
