//! Regression tests for micro-op *run chaining* in the arena engine.
//!
//! The engine queues each thread's pending micro-ops as contiguous runs
//! in a per-thread arena (DESIGN.md §13) instead of a `VecDeque`. The
//! one behaviour that genuinely exercises the chaining machinery — as
//! opposed to the straight-line drain — is `push_front`: the retry
//! paths re-queue work *ahead* of the already-expanded run, as a fresh
//! single-micro run chained on top of it. Two paths do this:
//!
//! * a transient (`-EBUSY`-like) per-page copy failure re-queues the
//!   same `MovePage`/`MigratePage` micro for another attempt;
//! * a tier-transaction abort re-queues `TierTxnBegin` *and*
//!   `TierTxnCommit` (two chained runs, drained begin-first).
//!
//! These tests pin that chained re-queues drain in exactly the order the
//! deque engine drained them: same makespan, same cost breakdown, same
//! counters, and the same trace — with the lookahead fast path on or
//! off, traced or untraced (the audit pattern of `determinism.rs`).

use numa_migrate::machine::{Machine, MemAccessKind, Op, ThreadSpec};
use numa_migrate::sim::{FaultKind, FaultPlan, FaultSite, TraceEventKind};
use numa_migrate::stats::Counter;
use numa_migrate::topology::{CoreId, NodeId};
use numa_migrate::vm::{MemPolicy, PAGE_SIZE};

/// One `move_pages` episode with transient copy failures injected on an
/// explicit schedule: consults 3 and 4 fail, so one page retries twice
/// back-to-back (two `push_front`s chained onto the drained run), and
/// consult 10 fails once more mid-batch. Returns everything a run
/// reports plus the retry/giveup counters and the retry trace events.
fn move_pages_retry_episode(
    fast_path: bool,
    trace: bool,
) -> (u64, String, String, u64, u64, Vec<(u64, u32)>) {
    const PAGES: u64 = 32;
    let mut m = Machine::opteron_4p();
    m.set_fast_path(fast_path);
    if trace {
        m.enable_trace(1 << 14);
    }
    let a = m.alloc(PAGES * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
    // Populate on node 0 (untimed relative to the measured episode —
    // it is part of the same run, which is fine: both variants do it).
    let populate = Op::write(a, PAGES * PAGE_SIZE, MemAccessKind::Stream);
    m.kernel.set_fault_plan(FaultPlan::new(7).with_schedule(
        FaultSite::MovePagesCopy,
        FaultKind::TransientCopy,
        vec![3, 4, 10],
    ));
    let pages: Vec<_> = (0..PAGES).map(|p| a + p * PAGE_SIZE).collect();
    let dest = vec![NodeId(1); pages.len()];
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![
                populate,
                Op::MovePages { pages, dest },
                Op::read(a, PAGES * PAGE_SIZE, MemAccessKind::Stream),
            ],
        )],
        &[],
    );
    // Every page must land on node 1: the schedule only delays copies,
    // never exhausts the retry budget.
    for p in 0..PAGES {
        assert_eq!(m.page_node(a + p * PAGE_SIZE), Some(NodeId(1)));
    }
    let retries = m.kernel.counters.get(Counter::MigrationRetries);
    let gaveup = m.kernel.counters.get(Counter::MigrationsGaveUp);
    let retry_events: Vec<(u64, u32)> = m
        .trace
        .snapshot()
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::MigrationRetry {
                page,
                attempts_left,
            } => Some((page, attempts_left)),
            _ => None,
        })
        .collect();
    (
        r.makespan.ns(),
        format!("{:?}", r.stats.breakdown),
        format!("{:?}", r.stats.counters),
        retries,
        gaveup,
        retry_events,
    )
}

#[test]
fn fault_retry_chaining_retries_in_place_and_is_config_invariant() {
    let (mk, bd, ct, retries, gaveup, _) = move_pages_retry_episode(true, false);
    assert_eq!(retries, 3, "three scheduled transient failures");
    assert_eq!(gaveup, 0, "no page may exhaust its retry budget");

    // The chained re-queues must be invisible to every virtual-time
    // number whichever engine configuration drains them.
    for fast_path in [true, false] {
        for trace in [false, true] {
            let (mk2, bd2, ct2, retries2, gaveup2, _) = move_pages_retry_episode(fast_path, trace);
            assert_eq!(
                mk, mk2,
                "makespan moved (fast_path={fast_path}, trace={trace})"
            );
            assert_eq!(
                bd, bd2,
                "breakdown moved (fast_path={fast_path}, trace={trace})"
            );
            assert_eq!(
                ct, ct2,
                "counters moved (fast_path={fast_path}, trace={trace})"
            );
            assert_eq!((retries2, gaveup2), (retries, gaveup));
        }
    }
}

#[test]
fn fault_retry_trace_shows_back_to_back_retries_of_one_page() {
    let (_, _, _, _, _, events) = move_pages_retry_episode(true, true);
    assert_eq!(events.len(), 3, "one trace event per scheduled failure");
    // Consults 3 and 4 hit the same page: the first retry is re-queued
    // ahead of the remaining batch (push_front), re-attempted
    // immediately, fails again, and is re-queued once more — so the
    // first two events name the same page with a decremented budget.
    assert_eq!(
        events[0].0, events[1].0,
        "chained retries must re-attempt the same page"
    );
    assert_eq!(
        events[1].1,
        events[0].1 - 1,
        "second attempt has one fewer retry left"
    );
    assert_ne!(
        events[1].0, events[2].0,
        "the third failure hits a later page"
    );
}

/// One transactional tier-demotion episode with a poisoned first
/// transaction: the injected transient-copy fault makes the first
/// commit abort, which re-queues `TierTxnBegin` + `TierTxnCommit` as
/// two chained runs ahead of the remaining batch. The second attempt
/// (consult 1, not scheduled) commits.
fn tier_abort_episode(fast_path: bool, trace: bool) -> (u64, String, String, u64, u64) {
    const PAGES: u64 = 4;
    let mut m = Machine::tiered_4p2();
    m.set_fast_path(fast_path);
    if trace {
        m.enable_trace(1 << 14);
    }
    let a = m.alloc(PAGES * PAGE_SIZE, MemPolicy::FirstTouch);
    let vpns: Vec<u64> = (0..PAGES).map(|p| (a + p * PAGE_SIZE).vpn()).collect();
    m.kernel.set_fault_plan(FaultPlan::new(11).with_schedule(
        FaultSite::TierPromotion,
        FaultKind::TransientCopy,
        vec![0],
    ));
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::write(a, PAGES * PAGE_SIZE, MemAccessKind::Stream),
                Op::TierMigrate {
                    pages: vpns,
                    dest: NodeId(4),
                    transactional: true,
                },
            ],
        )],
        &[],
    );
    // The aborted transaction must have been re-begun and committed:
    // every page reaches the capacity tier.
    for p in 0..PAGES {
        assert_eq!(m.page_node(a + p * PAGE_SIZE), Some(NodeId(4)));
    }
    (
        r.makespan.ns(),
        format!("{:?}", r.stats.breakdown),
        format!("{:?}", r.stats.counters),
        m.kernel.counters.get(Counter::TierTxnAborts),
        m.kernel.counters.get(Counter::TierTxnCommits),
    )
}

#[test]
fn tier_txn_abort_rebegins_and_is_config_invariant() {
    let (mk, bd, ct, aborts, commits) = tier_abort_episode(true, false);
    assert_eq!(aborts, 1, "the poisoned first transaction must abort");
    assert_eq!(commits, 4, "every page still commits after the re-begin");

    for fast_path in [true, false] {
        for trace in [false, true] {
            let (mk2, bd2, ct2, aborts2, commits2) = tier_abort_episode(fast_path, trace);
            assert_eq!(
                mk, mk2,
                "makespan moved (fast_path={fast_path}, trace={trace})"
            );
            assert_eq!(
                bd, bd2,
                "breakdown moved (fast_path={fast_path}, trace={trace})"
            );
            assert_eq!(
                ct, ct2,
                "counters moved (fast_path={fast_path}, trace={trace})"
            );
            assert_eq!((aborts2, commits2), (aborts, commits));
        }
    }
}
