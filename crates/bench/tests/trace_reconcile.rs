//! Trace/Breakdown consistency: the per-component `Span` events the engine
//! emits are produced by diffing the breakdown around each micro-op, so the
//! summed span durations must reconcile *exactly* with the `Breakdown`
//! totals the run reports. If these drift apart, either a cost path stopped
//! flowing through `exec_micro` or the trace layer is dropping events.

use numa_bench::traced_next_touch_episode;
use numa_migrate::experiments::fig5::{self, NtVariant};
use numa_migrate::stats::CostComponent;

#[test]
fn traced_episode_spans_reconcile_with_breakdown() {
    let e = traced_next_touch_episode(7);
    assert_eq!(e.dropped, 0, "episode trace buffer must not overflow");
    for c in CostComponent::ALL {
        assert_eq!(
            e.trace_totals.get(c),
            e.breakdown.get(c),
            "span sum for {c:?} must equal the breakdown total"
        );
    }
    assert!(
        e.breakdown.total() > 0,
        "episode must actually accumulate cost"
    );
}

#[test]
fn fig5_traced_run_spans_reconcile_with_breakdown() {
    for variant in [NtVariant::Kernel, NtVariant::User] {
        let (r, m) = fig5::measure_traced(256, variant, 1 << 16);
        assert_eq!(m.trace.dropped(), 0, "{variant:?}: trace overflowed");
        let totals = m.trace.component_totals();
        for c in CostComponent::ALL {
            assert_eq!(
                totals.get(c),
                r.stats.breakdown.get(c),
                "{variant:?}: span sum for {c:?} diverged from breakdown"
            );
        }
    }
}

#[test]
fn traced_episode_utilisation_is_sane() {
    let e = traced_next_touch_episode(3);
    assert!(!e.utilisation.resources.is_empty());
    for r in &e.utilisation.resources {
        assert!(
            (0.0..=1.0).contains(&r.utilisation),
            "{}: utilisation {} out of range",
            r.name,
            r.utilisation
        );
        assert!(
            r.busy_ns <= e.utilisation.horizon_ns,
            "{}: busy beyond horizon",
            r.name
        );
    }
    // The madvise/fault path must have exercised both the page-table lock
    // and at least one interconnect link.
    let pt = e
        .utilisation
        .resources
        .iter()
        .find(|r| r.name.contains("pt"))
        .expect("pt lock in report");
    assert!(pt.acquisitions > 0, "page-table lock never acquired");
    assert!(
        e.utilisation
            .resources
            .iter()
            .any(|r| r.name.contains("link") && r.busy_ns > 0),
        "no interconnect link ever busy"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_expected_shape() {
    use numa_migrate::stats::Json;
    let e = traced_next_touch_episode(11);
    let doc = Json::parse(&e.chrome_json).expect("chrome trace must parse as JSON");
    let Json::Obj(pairs) = &doc else {
        panic!("top level must be an object")
    };
    let events = pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let Json::Arr(events) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty(), "trace must contain events");
    // Every event needs the Chrome trace-viewer required keys.
    for ev in events {
        let Json::Obj(fields) = ev else {
            panic!("event must be an object")
        };
        for key in ["ph", "pid", "tid", "name"] {
            assert!(
                fields.iter().any(|(k, _)| k == key),
                "event missing {key}: {ev:?}"
            );
        }
    }
    // The run's counters are embedded alongside the event stream; the
    // episode's next-touch path must have moved pages through the fault
    // handler, and the in-memory copy must agree with the export.
    let counters = pairs
        .iter()
        .find(|(k, _)| k == "counters")
        .map(|(_, v)| v)
        .expect("counters key");
    let Json::Obj(counters) = counters else {
        panic!("counters must be an object")
    };
    let moved = counters
        .iter()
        .find(|(k, _)| k == "PagesMovedFault")
        .map(|(_, v)| v)
        .expect("PagesMovedFault counter");
    assert_eq!(
        format!("{moved}"),
        e.counters
            .get(numa_migrate::stats::Counter::PagesMovedFault)
            .to_string(),
        "embedded counter must match the in-memory counter"
    );
    assert!(
        e.counters
            .get(numa_migrate::stats::Counter::PagesMovedFault)
            > 0,
        "episode must move pages through the next-touch fault path"
    );
}
