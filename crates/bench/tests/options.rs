//! Command-line parsing: every value flag must accept both `--flag value`
//! and `--flag=value`, boolean flags must reject an inline value, and
//! unknown flags must fail rather than be silently ignored.

use numa_bench::{Options, ParseError};

fn parse(args: &[&str]) -> Result<Options, ParseError> {
    Options::try_parse_from(args.iter().map(|s| s.to_string()))
}

#[test]
fn value_flags_accept_both_spellings() {
    let a = parse(&["--seed", "42"]).unwrap();
    let b = parse(&["--seed=42"]).unwrap();
    assert_eq!(a.seed, 42);
    assert_eq!(b.seed, 42);

    let o = parse(&["--trace=t.json", "--json", "r.json"]).unwrap();
    assert_eq!(o.trace.as_deref(), Some("t.json"));
    assert_eq!(o.json.as_deref(), Some("r.json"));
}

#[test]
fn boolean_flags_parse_and_reject_inline_values() {
    let o = parse(&["--csv", "--full", "-v"]).unwrap();
    assert!(o.csv && o.full && o.verbose);
    assert!(matches!(parse(&["--csv=yes"]), Err(ParseError::Invalid(_))));
    assert!(matches!(parse(&["--full=1"]), Err(ParseError::Invalid(_))));
}

#[test]
fn errors_are_reported_not_ignored() {
    assert!(matches!(parse(&["--bogus"]), Err(ParseError::Invalid(_))));
    assert!(matches!(parse(&["--seed"]), Err(ParseError::Invalid(_))));
    assert!(matches!(
        parse(&["--seed", "notanumber"]),
        Err(ParseError::Invalid(_))
    ));
    assert!(matches!(parse(&["--help"]), Err(ParseError::Help)));
    assert!(matches!(parse(&["-h"]), Err(ParseError::Help)));
}

#[test]
fn defaults_are_stable() {
    let o = parse(&[]).unwrap();
    assert_eq!(o.seed, 0);
    assert!(!o.csv && !o.full && !o.verbose);
    assert!(o.trace.is_none() && o.json.is_none());
}
