//! Regression: the multitenant churn run's table and `--json` payload
//! are byte-identical whether the host executes it serially
//! (`--shards 1 --jobs 1`) or sharded across workers
//! (`--shards 8 --jobs 4`) — the sharded engine's output contract
//! (DESIGN.md §15), at the bench's real tenant count and seed, on the
//! exact strings the `multitenant` binary writes. The committed
//! `results/multitenant.json` golden checksum enforces the same thing
//! across commits; this test enforces it across packings in one build.

use numa_bench::{multitenant_summary, multitenant_table};
use numa_migrate::experiments::multitenant;

#[test]
fn sharded_run_matches_serial_byte_for_byte() {
    let serial = multitenant::run(multitenant::TENANTS, 42, 1, 1);
    let sharded = multitenant::run(multitenant::TENANTS, 42, 8, 4);
    assert_eq!(serial, sharded, "outcome fold diverged across packings");
    assert_eq!(
        multitenant_table(&serial).to_string(),
        multitenant_table(&sharded).to_string(),
        "rendered table diverged across packings"
    );
    assert_eq!(
        multitenant_table(&serial).to_csv(),
        multitenant_table(&sharded).to_csv()
    );
    assert_eq!(
        multitenant_summary(&serial).to_string(),
        multitenant_summary(&sharded).to_string(),
        "JSON summary diverged across packings"
    );
    // The acceptance floor: at least a thousand tenants, all accounted for.
    assert!(serial.tenants >= 1_000);
    assert_eq!(
        serial.rows.iter().map(|r| r.tenants).sum::<u64>(),
        serial.tenants
    );
}
