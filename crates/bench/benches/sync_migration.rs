//! Criterion benches: host-side cost of the synchronous-migration
//! simulation (the Figure 4 machinery). The quadratic/patched pair also
//! demonstrates the real O(n^2) lookup the un-patched kernel performs —
//! the host slowdown is visible, not just modelled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_migrate::experiments::fig4;

fn bench_sync_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_migration_sim");
    for pages in [64u64, 512, 2048] {
        g.bench_with_input(BenchmarkId::new("fig4_row", pages), &pages, |b, &p| {
            b.iter(|| fig4::run(std::hint::black_box(&[p])));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sync_migration);
criterion_main!(benches);
