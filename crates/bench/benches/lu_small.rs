//! Criterion benches: host-side cost of the LU application simulation
//! (Table 1 machinery) at reduced sizes, both strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_migrate::apps::lu::{run_lu, LuConfig};
use numa_migrate::prelude::*;

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_sim");
    g.sample_size(10);
    for strategy in [
        MigrationStrategy::Static,
        MigrationStrategy::KernelNextTouch,
    ] {
        g.bench_with_input(
            BenchmarkId::new("phantom_1024_128", strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| {
                    let mut m = NumaSystem::new().build();
                    run_lu(&mut m, &LuConfig::sweep(1024, 128, std::hint::black_box(s)))
                });
            },
        );
    }
    g.bench_function("real_64_16_validated", |b| {
        b.iter(|| {
            let mut m = NumaSystem::new().build();
            let r = run_lu(&mut m, &LuConfig::small(64, 16));
            assert!(r.residual.unwrap() < 1e-9);
            r.time
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lu);
criterion_main!(benches);
