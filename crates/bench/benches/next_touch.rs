//! Criterion benches: host-side cost of the next-touch simulation paths
//! (Figures 5-7 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_migrate::experiments::{fig5, fig7};

fn bench_next_touch(c: &mut Criterion) {
    let mut g = c.benchmark_group("next_touch_sim");
    for pages in [64u64, 1024] {
        g.bench_with_input(BenchmarkId::new("kernel_nt", pages), &pages, |b, &p| {
            b.iter(|| fig5::measure(std::hint::black_box(p), fig5::NtVariant::Kernel));
        });
        g.bench_with_input(BenchmarkId::new("user_nt", pages), &pages, |b, &p| {
            b.iter(|| fig5::measure(std::hint::black_box(p), fig5::NtVariant::User));
        });
    }
    g.bench_function("lazy_4_threads_4096_pages", |b| {
        b.iter(|| fig7::measure_lazy(std::hint::black_box(4096), 4));
    });
    g.finish();
}

criterion_group!(benches, bench_next_touch);
criterion_main!(benches);
