//! Regenerates Figure 8: execution time of 16 concurrent BLAS3 matrix
//! multiplications in 16 independent threads — static allocation vs
//! kernel and user next-touch.

use numa_bench::{secs, Options};
use numa_migrate::experiments::fig8;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("fig8", "Figure 8 (16 concurrent BLAS3 multiplications)");
    let sizes = if opts.full {
        fig8::paper_sizes()
    } else {
        vec![128, 256, 512, 1024]
    };
    let mut table = Table::new(["N", "Static", "Next-touch kernel", "Next-touch user"]);
    if opts.verbose {
        eprintln!("running n in {sizes:?} with {} job(s) ...", opts.jobs);
    }
    for row in fig8::run_jobs(&sizes, opts.jobs) {
        table.row([
            row.n.to_string(),
            secs(row.static_s),
            secs(row.kernel_nt_s),
            secs(row.user_nt_s),
        ]);
    }
    let mut out = opts.open_output("fig8");
    out.table(
        "Figure 8: execution time of 16 concurrent BLAS3 multiplications\n\
         (NxN doubles per thread, virtual seconds)",
        &table,
    );
    out.finish();
}
