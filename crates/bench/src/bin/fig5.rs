//! Regenerates Figure 5: next-touch migration throughput — user-space
//! (with and without the move_pages patch) vs the kernel implementation.
//!
//! With `--trace`/`--json`, additionally runs one traced kernel-NT
//! episode and exports its Chrome trace, cost breakdown and resource
//! utilisation — the trace's per-component span sums reconcile exactly
//! with the printed breakdown table (asserted in
//! `tests/trace_reconcile.rs`).

use numa_bench::{embed_counters, mbps, Options};
use numa_migrate::experiments::fig5::{self, NtVariant};
use numa_migrate::experiments::fig5_page_counts;
use numa_migrate::stats::{Json, Table};

fn main() {
    let opts = Options::parse("fig5", "Figure 5 (next-touch throughput comparison)");
    let pages = if opts.full {
        fig5_page_counts()
    } else {
        vec![4, 16, 128, 1024, 4096]
    };
    let rows = fig5::run_jobs(&pages, opts.jobs);
    let mut table = Table::new([
        "pages",
        "user NT (no patch) MB/s",
        "user NT MB/s",
        "kernel NT MB/s",
    ]);
    for r in rows {
        table.row([
            r.pages.to_string(),
            mbps(r.user_nopatch_mbps),
            mbps(r.user_mbps),
            mbps(r.kernel_mbps),
        ]);
    }
    let mut out = opts.open_output("fig5");
    out.table("Figure 5: next-touch performance comparison", &table);

    if opts.trace.is_some() || opts.json.is_some() {
        // One traced episode whose exported trace reconciles with the
        // breakdown printed below.
        let episode_pages: u64 = 1024;
        let (r, m) = fig5::measure_traced(episode_pages, NtVariant::Kernel, 1 << 16);
        let mut bt = Table::new(["component", "ns", "percent"]);
        for (c, ns, pct) in r.stats.breakdown.entries() {
            bt.row([c.label().to_string(), ns.to_string(), format!("{pct:.2}")]);
        }
        out.table(
            &format!("\nTraced episode (kernel NT, {episode_pages} pages): cost breakdown"),
            &bt,
        );
        let util = m.utilisation_report(r.makespan);
        out.table("\nTraced episode: resource utilisation", &util.to_table());
        out.meta(
            "traced_episode",
            Json::obj()
                .set("variant", "kernel-nt")
                .set("pages", episode_pages)
                .set("makespan_ns", r.makespan.ns())
                .set("trace_events", m.trace.len() as u64)
                .set("trace_dropped", m.trace.dropped())
                .set("utilisation", util.to_json()),
        );
        let mut counters = m.kernel.counters.clone();
        counters.merge(&r.stats.counters);
        out.set_trace_json(embed_counters(&m.trace.chrome_trace_json(), &counters));
    }
    out.finish();
}
