//! Regenerates Figure 5: next-touch migration throughput — user-space
//! (with and without the move_pages patch) vs the kernel implementation.

use numa_bench::{mbps, Options};
use numa_migrate::experiments::{fig5, fig5_page_counts};
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("fig5", "Figure 5 (next-touch throughput comparison)");
    let pages = if opts.full {
        fig5_page_counts()
    } else {
        vec![4, 16, 128, 1024, 4096]
    };
    let rows = fig5::run(&pages);
    let mut table = Table::new([
        "pages",
        "user NT (no patch) MB/s",
        "user NT MB/s",
        "kernel NT MB/s",
    ]);
    for r in rows {
        table.row([
            r.pages.to_string(),
            mbps(r.user_nopatch_mbps),
            mbps(r.user_mbps),
            mbps(r.kernel_mbps),
        ]);
    }
    println!("Figure 5: next-touch performance comparison\n");
    opts.emit(&table);
}
