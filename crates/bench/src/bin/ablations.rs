//! Design-choice ablations (DESIGN.md §6): the move_pages lookup fix in
//! isolation, the page-table-lock serialized fraction, user next-touch
//! region granularity, and the paper's §6 future-work extensions
//! (huge-page migration, read-only replication).

use numa_bench::{mbps, Options};
use numa_migrate::experiments::ablations;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("ablations", "design-choice ablations");
    let mut out = opts.open_output("ablations");

    let pages = if opts.full {
        vec![16, 64, 256, 1024, 4096, 16384]
    } else {
        vec![64, 1024, 4096]
    };
    let mut t = Table::new(["pages", "patched MB/s", "quadratic MB/s", "ratio"]);
    for (p, a, b) in ablations::lookup_ablation_jobs(&pages, opts.jobs) {
        t.row([p.to_string(), mbps(a), mbps(b), format!("{:.1}x", a / b)]);
    }
    out.table(
        "A1. move_pages destination-lookup fix (patched vs quadratic)",
        &t,
    );

    let fractions = [0.1, 0.3, 0.55, 0.7, 0.9];
    let mut t = Table::new(["fraction", "4-thread speedup"]);
    for (f, s) in ablations::lock_fraction_sweep_jobs(&fractions, 8192, opts.jobs) {
        t.row([format!("{f:.2}"), format!("{s:.2}x")]);
    }
    out.table(
        "\nA2. page-table-lock serialized fraction vs 4-thread lazy speedup",
        &t,
    );

    let (whole, per_chunk) = ablations::user_granularity(64);
    let mut t = Table::new(["marking granularity", "misplaced pages"]);
    t.row(["whole buffer".to_string(), whole.to_string()]);
    t.row(["region per chunk".to_string(), per_chunk.to_string()]);
    out.table(
        "\nA3. user next-touch granularity (4 threads on 4 nodes, 64 pages)",
        &t,
    );

    let (base, huge) = ablations::huge_page_migration();
    let mut t = Table::new(["granularity", "time", "throughput MB/s"]);
    t.row([
        "512 x 4 kB pages".to_string(),
        numa_migrate::stats::fmt_ns(base),
        mbps(numa_migrate::stats::mb_per_s(2 << 20, base)),
    ]);
    t.row([
        "1 x 2 MB huge page".to_string(),
        numa_migrate::stats::fmt_ns(huge),
        mbps(numa_migrate::stats::mb_per_s(2 << 20, huge)),
    ]);
    out.table(
        "\nA4. huge-page migration (2 MB payload, lazy next-touch)",
        &t,
    );

    let (plain, replicated) = ablations::replication_benefit(64, 4);
    let mut t = Table::new(["placement", "time"]);
    t.row([
        "single copy on node 0".to_string(),
        numa_migrate::stats::fmt_ns(plain),
    ]);
    t.row([
        "replica per node".to_string(),
        numa_migrate::stats::fmt_ns(replicated),
    ]);
    out.table(
        "\nA5. read-only replication (16 threads reading a shared table)",
        &t,
    );

    let (stat, hooked, auto) = ablations::hooked_vs_auto(4096, 6);
    let mut t = Table::new(["policy", "time"]);
    t.row([
        "static (no migration)".to_string(),
        numa_migrate::stats::fmt_ns(stat),
    ]);
    t.row([
        "explicit hooks (the paper)".to_string(),
        numa_migrate::stats::fmt_ns(hooked),
    ]);
    t.row([
        "automatic sampling (AutoNUMA-style)".to_string(),
        numa_migrate::stats::fmt_ns(auto),
    ]);
    out.table(
        "\nA6. explicit next-touch hooks vs AutoNUMA-style blind scanning",
        &t,
    );
    out.finish();
}
