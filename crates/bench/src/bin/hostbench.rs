//! Host-performance benchmark for the simulator itself (DESIGN.md §10).
//!
//! Times the heaviest sweeps in-process at `--jobs 1` and at the requested
//! `--jobs`, checksums every result set, and writes the measurements to a
//! JSON file (default `BENCH_pr10.json`). The checksums make the
//! equivalence contract auditable: every run of a workload must report the
//! same checksum no matter the jobs count, and a checksum change across
//! commits means virtual-time results moved — which the host-performance
//! work must never do.
//!
//! Workloads that are single-threaded by construction (one address space,
//! no sweep to distribute) are marked jobs-invariant and measured only
//! once, at `--jobs 1`: re-timing the identical function under a
//! different label measures scheduler noise, not the pool — the
//! BENCH_pr7 `ptrepl jobs=4` "regression" was exactly that artifact.
//!
//! The workload set covers every memory-metadata hot path the dense PTE
//! slabs serve: fig7 (fault-path migration + `move_pages` under
//! contention), table1 (LU with migration policies — the heavy sweep),
//! fig4 (`move_pages` / `migrate_pages` / memcpy batch walks), fig5
//! (`madvise(NEXT_TOUCH)` range marking + fault-path and signal-path
//! migration), ptrepl (eager replica write-through of a fault burst,
//! a migration frame-flip, and a munmap wave over a million-page address
//! space with four per-node page-table replicas), and sparsewalk (range
//! walks and updates over a multi-million-page table mapped one page per
//! 64 — the worst case for a dense walker and the case the present-bitmap
//! popcount skipping exists for).
//!
//! `baseline_seconds` records the same workloads measured on this
//! codebase immediately before the current optimisation round (same quick
//! sweeps, one host thread), so `speedup` tracks the optimisation
//! trajectory in-repo. Workloads without a pre-round measurement carry no
//! baseline or speedup entry. Schema note on the re-anchor: each round's
//! baselines are the *previous* round's jobs=1 medians, so `speedup` is
//! per-round, never cumulative — BENCH_pr8's fig7 entry of 0.89 means the
//! pr8 round cost fig7 ~11% against the pr7 anchor (the watermark-reclaim
//! accounting added to the fault path), not that the repo is slower than
//! it has ever been. This round anchors on the BENCH_pr8 medians below.
//!
//! The `engine` object is new in BENCH_pr10: the sharded orchestrator's
//! *engine-level* parallelism (the multitenant churn run at `--shards 8`
//! versus `--shards 1`, identical output asserted by checksum). Unlike the
//! sweep rows, the two timings differ only in how many host workers
//! execute tenant windows, so `engine.speedup` is the tentpole's
//! scalability figure. On a single-CPU host (`engine.host_cpus` = 1) the
//! worker clamp leaves one thread either way and the honest expectation
//! is ~1.0 — the perf gate only asserts speedup when `host_cpus` >= 2.

use numa_bench::Options;
use numa_migrate::experiments::{fig4, fig5, fig7, multitenant, table1};
use numa_migrate::sim::hash::FxHasher;
use std::hash::Hasher;
use std::time::Instant;

/// Wall-clock of the quick sweeps on the commit preceding the sharded
/// engine round, single host thread (seconds, the jobs=1 medians from
/// BENCH_pr8.json). A trajectory marker, not a cross-machine constant.
/// `multitenant` is new this round and carries no baseline.
const BASELINE_SECONDS: [(&str, f64); 7] = [
    ("fig7", 0.0542),
    ("table1", 1.4448),
    ("fig4", 0.0026),
    ("fig5", 0.0031),
    ("ptrepl", 0.0969),
    ("sparsewalk", 0.0290),
    ("qchurn", 0.1477),
];

/// Shard count for the parallel leg of the engine-level measurement.
const ENGINE_SHARDS: usize = 8;

fn checksum(debug_rows: &str) -> String {
    let mut h = FxHasher::default();
    h.write(debug_rows.as_bytes());
    format!("{:016x}", h.finish())
}

/// One workload measurement: median wall-clock across `reps` iterations,
/// the min/max spread, and the checksum of the output rows.
struct Sample {
    median: f64,
    min: f64,
    max: f64,
    checksum: String,
}

/// Median-of-`reps` wall-clock for `f`. The median resists one-off
/// scheduler stalls in either direction, unlike best-of (which reports a
/// lucky outlier) — and the recorded spread makes the remaining noise
/// visible in the JSON instead of silently discarded.
fn measure<F: Fn() -> String>(reps: usize, f: F) -> Sample {
    let mut times = Vec::new();
    let mut sum = String::new();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let rows = f();
        times.push(t0.elapsed().as_secs_f64());
        sum = checksum(&rows);
    }
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    let median = if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2.0
    };
    Sample {
        median,
        min: times[0],
        max: times[times.len() - 1],
        checksum: sum,
    }
}

/// Replica write-through stress at the vm layer: fault in a
/// million-page address space under four eager per-node replicas, flip
/// every frame (the `move_pages` PTE rewrite), then unmap half — ~12M
/// replica PTE writes through the linear-diff sync. Single-threaded by
/// construction (one address space), so the jobs value is irrelevant and
/// the checksum trivially jobs-invariant.
fn ptrepl_replica_stress() -> String {
    use numa_migrate::vm::{AddressSpace, FrameId, PageRange, PtPlacement, PtSyncMode, Pte};
    const PAGES: u64 = 1 << 20;
    let full = PageRange::new(0, PAGES);
    let mut space = AddressSpace::new();
    space.pt_configure(PtPlacement::Replicated, PtSyncMode::Eager, 4);
    for vpn in 0..PAGES {
        space.page_table.map(vpn, Pte::present_rw(FrameId(vpn)));
    }
    let faulted = space.pt_note_update(full);
    space.page_table.update_range(full, |vpn, pte| {
        pte.frame = FrameId(PAGES + vpn);
    });
    let migrated = space.pt_note_update(full);
    let half = PageRange::new(0, PAGES / 2);
    for vpn in half.iter() {
        space.page_table.unmap(vpn);
    }
    let unmapped = space.pt_note_update(half);
    let replicas = space.pt_replicas().expect("replicated placement");
    for node in 0..4u16 {
        assert!(
            replicas.agrees_with(numa_migrate::topology::NodeId(node), &space.page_table),
            "replica stress left node {node} diverged"
        );
    }
    format!(
        "faulted={faulted} migrated={migrated} unmapped={unmapped} live={}",
        space.page_table.len()
    )
}

/// Sparse-walk stress at the vm layer: reserve a 4M-page span (a
/// handful of dense slabs), map one page per 64-page bitmap word, then
/// drive the range-walk and range-update primitives across the whole
/// span. Every present-bitmap word is 63/64 absent, so a per-record
/// scan pays 64x the useful work while the popcount/trailing_zeros
/// walk pays one word test per word — the shape tier-promotion scans
/// and `migrate_pages` batches see over lazily-faulted heaps.
/// Single-threaded by construction; trivially jobs-invariant.
fn sparsewalk_stress() -> String {
    use numa_migrate::vm::{FrameId, PageRange, PageTable, Pte, PteFlags};
    const SPAN: u64 = 1 << 22;
    const STRIDE: u64 = 64;
    let full = PageRange::new(0, SPAN);
    let mut pt = PageTable::new();
    pt.reserve_range(full);
    let mut vpn = 0;
    while vpn < SPAN {
        pt.map(vpn, Pte::present_rw(FrameId(vpn)));
        vpn += STRIDE;
    }
    // Full-span walks over the 1-in-64 occupancy.
    let (mut seen, mut mix) = (0u64, 0u64);
    for _ in 0..8 {
        for (v, pte) in pt.walk_range(full) {
            seen += 1;
            mix = mix.wrapping_add(pte.frame.0 ^ v).rotate_left(7);
        }
    }
    // Range update (the mprotect/madvise shape), then the O(1) stats
    // read and a full release.
    pt.update_range(full, |_, pte| pte.flags |= PteFlags::NEXT_TOUCH);
    let stats = pt.stats();
    let released = pt.release_range(full).len();
    assert!(pt.is_empty(), "sparsewalk release left entries behind");
    format!(
        "seen={seen} mix={mix:016x} nt={} slabs={} released={released}",
        stats.next_touch, stats.slabs
    )
}

/// Engine-core churn: the calendar ready queue and the breakdown
/// accumulator under the exact access pattern the engine drives — pop
/// the earliest thread, charge a couple of cost components, re-schedule
/// at a deterministic stride — with no kernel, no page tables, and no
/// memory system, so queue push/pop plus breakdown adds are the entire
/// profile. The stride mix covers the three calendar regimes: same-day
/// ties (FIFO order), short hops within the 64-bucket ring (the common
/// quantum-sized advance), and rare far-future jumps that park on the
/// overflow rung and must migrate back. Single-threaded by
/// construction; trivially jobs-invariant.
fn qchurn_stress() -> String {
    use numa_migrate::sim::{ReadyQueue, SimTime};
    use numa_migrate::stats::{Breakdown, CostComponent};
    const THREADS: usize = 64;
    const MICROS: u64 = 100_000;
    let mut q = ReadyQueue::with_capacity(THREADS);
    let mut b = Breakdown::new();
    for tid in 0..THREADS {
        q.push(SimTime((tid % 5) as u64), tid);
    }
    let mut remaining = [MICROS; THREADS];
    let (mut pops, mut mix) = (0u64, 0u64);
    while let Some((now, tid)) = q.pop() {
        pops += 1;
        let stride = match pops % 127 {
            0 => 1 << 24,                          // overflow rung
            1..=9 => 0,                            // same-instant FIFO ties
            r => 40 + (r * 37 + tid as u64) % 400, // in-ring hops
        };
        b.add(CostComponent::MemoryAccess, stride);
        b.add(CostComponent::Compute, 1);
        mix = mix
            .wrapping_add(now.ns() ^ (tid as u64) << 7)
            .rotate_left(5);
        if remaining[tid] > 0 {
            remaining[tid] -= 1;
            q.push(now + stride, tid);
        }
    }
    assert_eq!(pops, THREADS as u64 * (MICROS + 1), "qchurn lost events");
    format!("pops={pops} mix={mix:016x} total={}", b.total())
}

fn main() {
    let opts = Options::parse("hostbench", "host wall-clock of the heavy sweeps");
    let out_path = opts
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_pr10.json".into());
    let fig7_pages: Vec<u64> = vec![64, 512, 4096, 16384];
    let fig4_pages: Vec<u64> = vec![16, 256, 2048];
    let fig5_pages: Vec<u64> = vec![16, 256, 2048];
    let table1_cases = table1::quick_cases();
    // (name, reps, jobs-sensitive, runner) — reps are median-of; table1
    // is slow enough that fewer iterations already give a stable median.
    // Jobs-insensitive workloads ignore the jobs argument and are
    // measured only at jobs=1 (see the module docs).
    type Runner<'a> = Box<dyn Fn(usize) -> String + 'a>;
    let workloads: Vec<(&str, usize, bool, Runner)> = vec![
        (
            "fig7",
            5,
            true,
            Box::new(|jobs| format!("{:?}", fig7::run_jobs(&fig7_pages, 4, jobs))),
        ),
        (
            "table1",
            3,
            true,
            Box::new(|jobs| format!("{:?}", table1::run_jobs(&table1_cases, jobs))),
        ),
        (
            "fig4",
            5,
            true,
            Box::new(|jobs| format!("{:?}", fig4::run_jobs(&fig4_pages, jobs))),
        ),
        (
            "fig5",
            5,
            true,
            Box::new(|jobs| format!("{:?}", fig5::run_jobs(&fig5_pages, jobs))),
        ),
        (
            "ptrepl",
            3,
            false,
            Box::new(|_jobs| ptrepl_replica_stress()),
        ),
        (
            "sparsewalk",
            3,
            false,
            Box::new(|_jobs| sparsewalk_stress()),
        ),
        ("qchurn", 3, false, Box::new(|_jobs| qchurn_stress())),
        (
            // Engine-level parallelism, not a sweep: jobs=1 runs the churn
            // serially (shards=1), jobs=N runs the same tenants sharded
            // ENGINE_SHARDS ways on N workers. The checksum assertion below
            // is the sharded engine's output contract across packings.
            // Five reps: the run is short (~0.1s) and the serial/sharded
            // ratio is the reported engine speedup, so the median needs
            // more samples to shrug off one-off scheduler stalls.
            "multitenant",
            5,
            true,
            Box::new(|jobs| {
                let shards = if jobs > 1 { ENGINE_SHARDS } else { 1 };
                format!(
                    "{:?}",
                    multitenant::run(multitenant::TENANTS, 0, shards, jobs)
                )
            }),
        ),
    ];

    let jobs_values = if opts.jobs > 1 {
        vec![1, opts.jobs]
    } else {
        vec![1]
    };
    let mut runs = Vec::new();
    let mut seq_seconds = Vec::new();
    let mut par_seconds = Vec::new();
    for (name, reps, jobs_sensitive, run) in &workloads {
        let mut sums = Vec::new();
        for &jobs in &jobs_values {
            if jobs > 1 && !jobs_sensitive {
                continue;
            }
            let s = measure(*reps, || run(jobs));
            if opts.verbose {
                eprintln!(
                    "{name} jobs={jobs}: median {:.3}s (spread {:.3}-{:.3}s) checksum={}",
                    s.median, s.min, s.max, s.checksum
                );
            }
            if jobs == 1 {
                seq_seconds.push((*name, s.median));
            } else {
                par_seconds.push((*name, s.median));
            }
            runs.push(format!(
                "    {{\"binary\": \"{name}\", \"jobs\": {jobs}, \"seconds\": {:.4}, \
                 \"min_seconds\": {:.4}, \"max_seconds\": {:.4}, \"reps\": {reps}, \
                 \"checksum\": \"{}\"}}",
                s.median, s.min, s.max, s.checksum
            ));
            sums.push(s.checksum);
        }
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "{name}: results differ across --jobs values — the parallel sweep \
             runner (or the sharded engine) broke the determinism contract"
        );
    }

    let baseline: Vec<String> = BASELINE_SECONDS
        .iter()
        .map(|(n, s)| format!("    \"{n}\": {s:.4}"))
        .collect();
    let speedup: Vec<String> = BASELINE_SECONDS
        .iter()
        .filter_map(|(n, base)| {
            seq_seconds
                .iter()
                .find(|(m, _)| m == n)
                .map(|(_, now)| format!("    \"{n}\": {:.2}", base / now))
        })
        .collect();

    // The tentpole figure: serial vs sharded wall-clock of the same
    // byte-identical multitenant run. Present only when a parallel leg was
    // measured (opts.jobs > 1); host_cpus lets the perf gate skip the
    // speedup assertion on hosts where no parallelism exists to win.
    let serial_mt = seq_seconds
        .iter()
        .find(|(n, _)| *n == "multitenant")
        .map(|&(_, s)| s);
    let engine = match (
        serial_mt,
        par_seconds.iter().find(|(n, _)| *n == "multitenant"),
    ) {
        (Some(serial), Some(&(_, sharded))) => format!(
            "  \"engine\": {{\n    \"workload\": \"multitenant\",\n    \
             \"tenants\": {},\n    \"shards\": {ENGINE_SHARDS},\n    \
             \"jobs\": {},\n    \"host_cpus\": {},\n    \
             \"serial_seconds\": {serial:.4},\n    \
             \"sharded_seconds\": {sharded:.4},\n    \
             \"speedup\": {:.2}\n  }},\n",
            multitenant::TENANTS,
            opts.jobs,
            threadpool::available_parallelism(),
            serial / sharded
        ),
        _ => String::new(),
    };

    let json = format!(
        "{{\n  \"bench\": \"host-performance\",\n{engine}  \"runs\": [\n{}\n  ],\n  \
         \"baseline_seconds\": {{\n{}\n  }},\n  \"speedup\": {{\n{}\n  }}\n}}\n",
        runs.join(",\n"),
        baseline.join(",\n"),
        speedup.join(",\n")
    );
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("hostbench: cannot write {out_path}: {e}"));
    print!("{json}");
    eprintln!("hostbench: wrote {out_path}");
}
