//! Host-performance benchmark for the simulator itself (DESIGN.md §10).
//!
//! Times the two heaviest sweeps (fig7 quick, table1 quick) in-process at
//! `--jobs 1` and at the requested `--jobs`, checksums every result set,
//! and writes the measurements to a JSON file (default `BENCH_pr3.json`).
//! The checksums make the equivalence contract auditable: every run of a
//! workload must report the same checksum no matter the jobs count, and a
//! checksum change across commits means virtual-time results moved — which
//! the host-performance work must never do.
//!
//! `baseline_seconds` records the same workloads measured on this
//! codebase before the fast path / allocation work landed (same quick
//! sweeps, one host thread), so `speedup` tracks the optimisation
//! trajectory in-repo.

use numa_bench::Options;
use numa_migrate::experiments::{fig7, table1};
use numa_migrate::sim::hash::FxHasher;
use std::hash::Hasher;
use std::time::Instant;

/// Pre-optimisation wall-clock of the quick sweeps, single host thread
/// (seconds). Measured on the commit preceding the host-performance work;
/// useful as a trajectory marker, not as a cross-machine constant.
const BASELINE_SECONDS: [(&str, f64); 2] = [("fig7", 0.248), ("table1", 4.777)];

fn checksum(debug_rows: &str) -> String {
    let mut h = FxHasher::default();
    h.write(debug_rows.as_bytes());
    format!("{:016x}", h.finish())
}

/// Best-of-`reps` wall-clock for `f`, plus the checksum of its output.
fn measure<F: Fn() -> String>(reps: usize, f: F) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut sum = String::new();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let rows = f();
        best = best.min(t0.elapsed().as_secs_f64());
        sum = checksum(&rows);
    }
    (best, sum)
}

fn main() {
    let opts = Options::parse("hostbench", "host wall-clock of the heavy sweeps");
    let out_path = opts.json.clone().unwrap_or_else(|| "BENCH_pr3.json".into());
    let fig7_pages: Vec<u64> = vec![64, 512, 4096, 16384];
    let table1_cases = table1::quick_cases();
    // (name, reps, runner) — reps are best-of to shrug off scheduler noise;
    // table1 is slow enough that one rep is already stable.
    type Runner<'a> = Box<dyn Fn(usize) -> String + 'a>;
    let workloads: Vec<(&str, usize, Runner)> = vec![
        (
            "fig7",
            3,
            Box::new(|jobs| format!("{:?}", fig7::run_jobs(&fig7_pages, 4, jobs))),
        ),
        (
            "table1",
            1,
            Box::new(|jobs| format!("{:?}", table1::run_jobs(&table1_cases, jobs))),
        ),
    ];

    let jobs_values = if opts.jobs > 1 {
        vec![1, opts.jobs]
    } else {
        vec![1]
    };
    let mut runs = Vec::new();
    let mut seq_seconds = Vec::new();
    for (name, reps, run) in &workloads {
        let mut sums = Vec::new();
        for &jobs in &jobs_values {
            let (secs, sum) = measure(*reps, || run(jobs));
            if opts.verbose {
                eprintln!("{name} jobs={jobs}: {secs:.3}s checksum={sum}");
            }
            if jobs == 1 {
                seq_seconds.push((*name, secs));
            }
            runs.push(format!(
                "    {{\"binary\": \"{name}\", \"jobs\": {jobs}, \"seconds\": {secs:.4}, \
                 \"checksum\": \"{sum}\"}}"
            ));
            sums.push(sum);
        }
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "{name}: results differ across --jobs values — the parallel sweep \
             runner broke the determinism contract"
        );
    }

    let baseline: Vec<String> = BASELINE_SECONDS
        .iter()
        .map(|(n, s)| format!("    \"{n}\": {s:.4}"))
        .collect();
    let speedup: Vec<String> = BASELINE_SECONDS
        .iter()
        .filter_map(|(n, base)| {
            seq_seconds
                .iter()
                .find(|(m, _)| m == n)
                .map(|(_, now)| format!("    \"{n}\": {:.2}", base / now))
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"host-performance\",\n  \"runs\": [\n{}\n  ],\n  \
         \"baseline_seconds\": {{\n{}\n  }},\n  \"speedup\": {{\n{}\n  }}\n}}\n",
        runs.join(",\n"),
        baseline.join(",\n"),
        speedup.join(",\n")
    );
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("hostbench: cannot write {out_path}: {e}"));
    print!("{json}");
    eprintln!("hostbench: wrote {out_path}");
}
