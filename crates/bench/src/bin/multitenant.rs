//! Regenerates the multitenant churn run: 1,000 tenant processes
//! (2,000 with `--full`) doing mmap → populate → next-touch → migrate →
//! `move_pages` → munmap generations on the sharded deterministic
//! engine, coupled through a shared frame-capacity ledger and the
//! machine-wide L3-thrash model, reconciled at virtual-time window
//! barriers. `--shards`/`--jobs` parallelise the host work; the table
//! and JSON are byte-identical for any combination (the regression
//! suite and the golden checksum both assert this).

use numa_bench::{multitenant_summary, multitenant_table, Options};
use numa_migrate::experiments::multitenant;

fn main() {
    let opts = Options::parse(
        "multitenant",
        "the 1,000-tenant churn run on the sharded engine",
    );
    let mut out = opts.open_output("multitenant");
    let tenants = if opts.full {
        multitenant::TENANTS_FULL
    } else {
        multitenant::TENANTS
    };
    let outcome = multitenant::run(tenants, opts.seed, opts.shards, opts.jobs);
    out.table(
        &format!(
            "Multitenant churn: {} tenant processes (seed {}) in {} cohorts;\n\
             shared pool {} frames/node, initial slice {} frames/node, refills of {}\n\
             below {} free, surplus above {} recycled; thrash limit {} misses/window.\n\
             Output is identical for any --shards/--jobs.",
            tenants,
            opts.seed,
            multitenant::COHORTS,
            multitenant::POOL_FRAMES_PER_NODE,
            multitenant::INITIAL_FRAMES_PER_NODE,
            multitenant::REFILL_FRAMES,
            multitenant::LOW_FREE_FRAMES,
            multitenant::KEEP_FREE_FRAMES,
            multitenant::THRASH_MISS_LIMIT,
        ),
        &multitenant_table(&outcome),
    );
    out.meta("summary", multitenant_summary(&outcome));
    out.finish();
}
