//! Figure 3 counterpart: print the simulated experimentation platform —
//! nodes, cores, links, routes and NUMA factors — so every other
//! experiment's context is inspectable.

use numa_bench::Options;
use numa_migrate::prelude::*;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("fig3", "Figure 3 (the experimentation platform)");
    let m = Machine::opteron_4p();
    let topo = m.topology();
    let cost = topo.cost();
    let mut out = opts.open_output("fig3");

    println!(
        "The experimentation host: {} nodes x {} cores ({} total), \
         {:.1} GHz, {} GB + {} MB L3 per node\n",
        topo.node_count(),
        topo.core_count() / topo.node_count(),
        topo.core_count(),
        topo.core(CoreId(0)).freq_hz as f64 / 1e9,
        topo.node(NodeId(0)).memory_bytes >> 30,
        topo.node(NodeId(0)).l3_bytes >> 20,
    );

    let mut links = Table::new(["link", "endpoints", "bandwidth GB/s"]);
    for i in 0..topo.link_count() {
        let l = topo.link(numa_migrate::topology::LinkId(i as u16));
        links.row([
            format!("#{i}"),
            format!("{} <-> {}", l.a, l.b),
            format!("{:.1}", l.bandwidth_bytes_per_ns),
        ]);
    }
    out.table("HyperTransport links:", &links);

    let mut routes = Table::new(["from\\to", "node#0", "node#1", "node#2", "node#3"]);
    for a in topo.node_ids() {
        let mut row = vec![a.to_string()];
        for b in topo.node_ids() {
            row.push(format!(
                "{} hop(s), x{:.2}",
                topo.hops(a, b),
                topo.numa_factor(a, b)
            ));
        }
        routes.row(row);
    }
    out.table("\nRoutes and NUMA factors (paper: 1.2-1.4):", &routes);

    let mut consts = Table::new(["constant", "value", "paper source"]);
    consts.row([
        "move_pages base".into(),
        format!("{} us", cost.move_pages_base_ns / 1000),
        "\u{a7}4.2 (~160 us)".to_string(),
    ]);
    consts.row([
        "migrate_pages base".into(),
        format!("{} us", cost.migrate_pages_base_ns / 1000),
        "\u{a7}4.2 (~400 us)".to_string(),
    ]);
    consts.row([
        "kernel copy bandwidth".into(),
        format!("{:.1} GB/s", cost.kernel_copy_bw),
        "\u{a7}4.2 (1 GB/s)".to_string(),
    ]);
    consts.row([
        "pt-lock serialized fraction".into(),
        format!("{:.2}", cost.pt_lock_fraction),
        "Fig. 7 scaling".to_string(),
    ]);
    consts.row([
        "unpatched lookup per entry".into(),
        format!("{:.0} ns", cost.unpatched_lookup_ns_per_entry),
        "Fig. 4 shape".to_string(),
    ]);
    out.table(
        "\nCalibrated kernel constants (DESIGN.md \u{a7}4):",
        &consts,
    );
    out.finish();
}
