//! Regenerates the §4.5 BLAS1 observation: migration never improves
//! vector operations.

use numa_bench::{percent, secs, Options};
use numa_migrate::experiments::blas1;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("blas1_check", "the BLAS1 no-improvement check (§4.5)");
    let sizes = if opts.full {
        blas1::paper_sizes()
    } else {
        vec![1 << 12, 1 << 16]
    };
    let mut table = Table::new([
        "elements",
        "Static",
        "Next-touch",
        "Sync move_pages",
        "NT improvement",
    ]);
    for r in blas1::run(&sizes) {
        table.row([
            r.elements.to_string(),
            secs(r.static_s),
            secs(r.next_touch_s),
            secs(r.sync_s),
            percent(r.nt_improvement_percent()),
        ]);
    }
    let mut out = opts.open_output("blas1_check");
    out.table(
        "BLAS1 (daxpy) with 16 threads: migration must never improve\n\
         (paper \u{00a7}4.5: \"BLAS1 operations never improve thanks to memory migration\")",
        &table,
    );
    out.finish();
}
