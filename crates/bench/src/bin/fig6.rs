//! Regenerates Figure 6: per-component cost breakdown of the two
//! next-touch implementations (stacked percentages).

use numa_bench::Options;
use numa_migrate::experiments::fig6;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("fig6", "Figure 6 (next-touch cost breakdowns)");
    let pages = if opts.full {
        vec![4, 16, 64, 256, 1024, 4096]
    } else {
        vec![16, 256, 1024]
    };
    let mut out = opts.open_output("fig6");

    let mut ta = Table::new([
        "pages",
        "copy %",
        "control %",
        "restore %",
        "fault+signal %",
        "mark %",
        "tlb %",
        "lock wait %",
    ]);
    for r in fig6::run_user(&pages) {
        use numa_migrate::stats::CostComponent as C;
        ta.row([
            r.pages.to_string(),
            format!("{:.1}", r.percent(C::MovePagesCopy)),
            format!("{:.1}", r.percent(C::MovePagesControl)),
            format!("{:.1}", r.percent(C::MprotectRestore)),
            format!("{:.1}", r.percent(C::PageFaultSignal)),
            format!("{:.1}", r.percent(C::MprotectMark)),
            format!("{:.1}", r.percent(C::TlbFlush)),
            format!("{:.1}", r.percent(C::LockWait)),
        ]);
    }
    out.table(
        "Figure 6(a): next-touch in user space — cost percentage per component",
        &ta,
    );

    let mut tb = Table::new([
        "pages",
        "copy %",
        "fault+control %",
        "madvise %",
        "tlb %",
        "lock wait %",
    ]);
    for r in fig6::run_kernel(&pages) {
        use numa_migrate::stats::CostComponent as C;
        tb.row([
            r.pages.to_string(),
            format!("{:.1}", r.percent(C::FaultCopy)),
            format!("{:.1}", r.percent(C::FaultControl)),
            format!("{:.1}", r.percent(C::Madvise)),
            format!("{:.1}", r.percent(C::TlbFlush)),
            format!("{:.1}", r.percent(C::LockWait)),
        ]);
    }
    out.table(
        "\nFigure 6(b): next-touch in the kernel — cost percentage per component",
        &tb,
    );
    out.finish();
}
