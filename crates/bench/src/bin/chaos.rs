//! Regenerates the chaos sweep: deterministic fault injection across
//! every migration path (`move_pages`, `migrate_pages`, kernel and
//! user-space next-touch, tier promotion), with bounded retries and
//! graceful degradation. Every case runs twice and is audited — page
//! table consistent, frame accounting balanced, results byte-identical —
//! so a nonzero `violations` column (or a panic) is a real bug.

use numa_bench::{chaos_table, Options};
use numa_migrate::experiments::chaos;

fn main() {
    let opts = Options::parse(
        "chaos",
        "the fault-injection sweep (retry/degradation robustness)",
    );
    let mut out = opts.open_output("chaos");
    let rates = chaos::default_rates(opts.full);
    // --full also sweeps the memory-pressure paths (node evacuation,
    // direct reclaim); the default workload list — and so the golden
    // JSON — is unchanged.
    let mut workloads = chaos::WORKLOADS.to_vec();
    if opts.full {
        workloads.extend(chaos::PRESSURE_WORKLOADS);
    }
    let table = chaos_table(&workloads, &rates, opts.seed, opts.jobs);
    out.table(
        &format!(
            "Chaos sweep: {} pages per workload; transient-copy (EBUSY), frame-exhausted\n\
             (ENOMEM) and racing-unmap (ENOENT) faults injected at each swept rate\n\
             (seed {}); every case audited and executed twice for determinism",
            chaos::PAGES,
            opts.seed
        ),
        &table,
    );
    out.finish();
}
