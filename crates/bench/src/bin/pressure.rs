//! Regenerates the memory-pressure sweep: three redistribution
//! strategies (synchronous `move_pages` plus a node hot-remove episode,
//! kernel next-touch, tiered background reclaim) as working-set
//! occupancy crosses 100 % of DRAM. Every run has watermarks, direct
//! reclaim, the OOM killer and the retry-livelock watchdog enabled plus
//! chaos fault injection, so the table shows the defences engaging —
//! reclaim and evacuation below capacity, OOM kills and watchdog
//! firings past it — while every case stays audited, deterministic and
//! panic-free.

use numa_bench::{pressure_table, Options};
use numa_migrate::experiments::pressure;

fn main() {
    let opts = Options::parse(
        "pressure",
        "the memory-pressure sweep (reclaim/OOM/watchdog resilience)",
    );
    let mut out = opts.open_output("pressure");
    let occupancies = pressure::default_occupancies(opts.full);
    let table = pressure_table(&occupancies, opts.seed, opts.jobs);
    out.table(
        &format!(
            "Pressure sweep: 4 threads on {}-frame nodes, occupancy 60%..105% of DRAM;\n\
             watermarks {}/{} frames, direct reclaim, OOM killer and retry watchdog on,\n\
             {} ppm chaos injection (seed {}); every case audited and executed twice\n\
             for determinism",
            pressure::FRAMES_PER_NODE,
            pressure::LOW_WATERMARK,
            pressure::MIN_WATERMARK,
            pressure::INJECT_PPM,
            opts.seed
        ),
        &table,
    );
    out.finish();
}
