//! Page-table placement comparison (ptplace subsystem): each workload
//! measured with a co-located single-home page table, Mitosis-style
//! per-node replicas, and a deliberately remote single home.

use numa_bench::Options;
use numa_migrate::experiments::ptrepl;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("ptrepl", "the page-table placement comparison");
    let pages = if opts.full {
        ptrepl::default_page_counts()
    } else {
        vec![64, 512, 2048]
    };
    let cases = ptrepl::cases(&pages);
    let rows = ptrepl::run_jobs(&cases, opts.jobs);
    let mut table = Table::new([
        "workload",
        "pages",
        "local-ms",
        "repl-ms",
        "remote-ms",
        "remote-x",
        "repl-recovery",
    ]);
    for r in &rows {
        table.row([
            r.workload.to_string(),
            r.pages.to_string(),
            format!("{:.3}", r.local_ns as f64 / 1e6),
            format!("{:.3}", r.repl_ns as f64 / 1e6),
            format!("{:.3}", r.remote_ns as f64 / 1e6),
            format!("{:.2}x", r.remote_slowdown()),
            format!("{:+.0} %", r.repl_recovery() * 100.0),
        ]);
    }
    let mut out = opts.open_output("ptrepl");
    out.table(
        "Page-table placement: local home vs per-node replicas vs remote home\n\
         (walk = TLB-walk bound, migrate/next_touch = PTE-rewrite bound, lu = Table 1 app)",
        &table,
    );
    out.finish();
}
