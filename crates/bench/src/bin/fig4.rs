//! Regenerates Figure 4: migration and memory-copy throughput between
//! NUMA nodes #0 and #1 (memcpy / migrate_pages / move_pages /
//! move_pages without the complexity patch).

use numa_bench::{mbps, Options};
use numa_migrate::experiments::{fig4, fig4_page_counts};
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("fig4", "Figure 4 (synchronous migration throughput)");
    let pages = if opts.full {
        fig4_page_counts()
    } else {
        vec![1, 16, 256, 2048, 8192]
    };
    let rows = fig4::run_jobs(&pages, opts.jobs);
    let mut table = Table::new([
        "pages",
        "memcpy MB/s",
        "migrate_pages MB/s",
        "move_pages MB/s",
        "move_pages(no patch) MB/s",
    ]);
    for r in rows {
        table.row([
            r.pages.to_string(),
            mbps(r.memcpy_mbps),
            mbps(r.migrate_pages_mbps),
            mbps(r.move_pages_mbps),
            mbps(r.move_pages_nopatch_mbps),
        ]);
    }
    let mut out = opts.open_output("fig4");
    out.table(
        "Figure 4: migration and memory copy throughput, node #0 -> node #1",
        &table,
    );
    out.finish();
}
