//! Regenerates the tiering experiment: transactional (Nomad-style
//! non-exclusive copy) vs stop-the-world page promotion under concurrent
//! writers, and the application-time sweep whose advantage collapses once
//! the hot working set exceeds DRAM capacity.

use numa_bench::{tiering_capacity_table, tiering_mechanism_table, Options};

fn main() {
    let opts = Options::parse(
        "tiering",
        "heterogeneous-memory tiering (transactional vs stop-the-world promotion)",
    );
    let mut out = opts.open_output("tiering");
    let (writer_counts, pages, hot): (Vec<usize>, u64, u64) = if opts.full {
        (vec![1, 2, 4, 8, 16], 1024, 256)
    } else {
        (vec![1, 4], 256, 64)
    };
    let mech = tiering_mechanism_table(&writer_counts, pages, hot, opts.seed, opts.jobs);
    out.table(
        &format!(
            "Tiering mechanism: writer completion time (ms) while {pages} slow-tier pages\n\
             are promoted; writers hammer the {hot} hottest (seed {})",
            opts.seed
        ),
        &mech,
    );

    let (hot_counts, dram_per_node, rounds): (Vec<u64>, u64, usize) = if opts.full {
        (vec![512, 1024, 2048, 4096, 8192, 16384], 512, 6)
    } else {
        (vec![1024, 4096, 8192], 512, 4)
    };
    let cap = tiering_capacity_table(&hot_counts, dram_per_node, rounds, opts.jobs);
    out.table(
        &format!(
            "\nTiering capacity sweep: 4 readers over a slow-resident hot set,\n\
             threshold daemon vs static placement, DRAM = {} pages total",
            4 * dram_per_node
        ),
        &cap,
    );
    out.finish();
}
