//! Regenerates Figure 7: aggregate throughput of parallel lazy migration
//! (kernel next-touch) and synchronous migration (move_pages) with up to
//! 4 threads on the destination node.

use numa_bench::{mbps, Options};
use numa_migrate::experiments::{fig7, fig7_page_counts};
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("fig7", "Figure 7 (threaded migration scalability)");
    let pages = if opts.full {
        fig7_page_counts()
    } else {
        vec![64, 512, 4096, 16384]
    };
    let rows = fig7::run_jobs(&pages, 4, opts.jobs);
    let mut table = Table::new([
        "pages", "sync-1", "sync-2", "sync-3", "sync-4", "lazy-1", "lazy-2", "lazy-3", "lazy-4",
    ]);
    for r in rows {
        let mut cells = vec![r.pages.to_string()];
        cells.extend(r.sync_mbps.iter().map(|v| mbps(*v)));
        cells.extend(r.lazy_mbps.iter().map(|v| mbps(*v)));
        table.row(cells);
    }
    let mut out = opts.open_output("fig7");
    out.table(
        "Figure 7: aggregate migration throughput (MB/s), node #0 -> node #1,\n\
         1-4 threads bound to node #1",
        &table,
    );
    out.finish();
}
