//! Regenerates Table 1: execution time of the threaded LU factorization
//! with 16 OpenMP threads — static interleaved allocation vs the kernel
//! next-touch policy.

use numa_bench::{percent, secs, Options};
use numa_migrate::experiments::table1;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("table1", "Table 1 (LU factorization times)");
    let cases = if opts.full {
        table1::paper_cases()
    } else {
        table1::quick_cases()
    };
    let mut table = Table::new([
        "Matrix size",
        "Block size",
        "Static",
        "Next-touch",
        "Improvement",
    ]);
    if opts.verbose {
        eprintln!(
            "running {} cases with {} job(s) ...",
            cases.len(),
            opts.jobs
        );
    }
    for row in table1::run_jobs(&cases, opts.jobs) {
        table.row([
            format!("{}k x {}k", row.n / 1024, row.n / 1024),
            format!("{} x {}", row.bs, row.bs),
            secs(row.static_s),
            secs(row.next_touch_s),
            percent(row.improvement_percent()),
        ]);
    }
    let mut out = opts.open_output("table1");
    out.table(
        "Table 1: LU factorization time, 16 OpenMP threads (virtual seconds)",
        &table,
    );
    out.finish();
}
