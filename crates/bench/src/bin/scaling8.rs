//! The §6 outlook experiment: the next-touch improvement as the machine
//! grows from 2 to 8 NUMA nodes ("larger NUMA machines where data
//! locality is more critical ... making the Next-touch policy even more
//! interesting").

use numa_bench::{percent, secs, Options};
use numa_migrate::experiments::scaling;
use numa_migrate::stats::Table;

fn main() {
    let opts = Options::parse("scaling8", "the §6 larger-machines outlook");
    let n = if opts.full { 1024 } else { 512 };
    let mut table = Table::new(["nodes", "threads", "Static", "Next-touch", "Improvement"]);
    for r in scaling::run_jobs(n, opts.jobs) {
        table.row([
            r.nodes.to_string(),
            r.threads.to_string(),
            secs(r.static_s),
            secs(r.next_touch_s),
            percent(r.improvement_percent()),
        ]);
    }
    let mut out = opts.open_output("scaling8");
    out.table(
        &format!(
            "Next-touch improvement vs machine size ({n}x{n} GEMM per thread, one\n\
             thread per core, data initially on node 0)"
        ),
        &table,
    );
    out.finish();
}
