//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md §5) and prints it as an aligned text table, optionally as
//! CSV. A tiny hand-rolled flag parser keeps the workspace free of CLI
//! dependencies.

use std::env;

/// Parsed common command-line options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit CSV instead of the aligned table.
    pub csv: bool,
    /// Run the full paper-sized parameter sweep (default: a reduced sweep
    /// that finishes in seconds).
    pub full: bool,
    /// Print per-run diagnostics.
    pub verbose: bool,
}

impl Options {
    /// Parse `std::env::args`, exiting with usage on `--help` or unknown
    /// flags.
    pub fn parse(binary: &str, what: &str) -> Options {
        let mut o = Options::default();
        for arg in env::args().skip(1) {
            match arg.as_str() {
                "--csv" => o.csv = true,
                "--full" => o.full = true,
                "--verbose" | "-v" => o.verbose = true,
                "--help" | "-h" => {
                    eprintln!("{binary}: regenerate {what}");
                    eprintln!("usage: {binary} [--csv] [--full] [--verbose]");
                    eprintln!("  --csv      emit CSV instead of an aligned table");
                    eprintln!("  --full     run the paper-sized sweep (slower)");
                    eprintln!("  --verbose  per-run diagnostics");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("{binary}: unknown flag {other} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        o
    }

    /// Print a finished table per the output options.
    pub fn emit(&self, table: &numa_migrate::stats::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{table}");
        }
    }
}

/// Format MB/s with one decimal.
pub fn mbps(v: f64) -> String {
    format!("{v:.1}")
}

/// Format seconds with adaptive precision (the paper's Table 1 style).
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0} s")
    } else if v >= 10.0 {
        format!("{v:.1} s")
    } else if v >= 0.1 {
        format!("{v:.2} s")
    } else {
        format!("{:.2} ms", v * 1e3)
    }
}

/// Format a signed percentage (the paper's Improvement column).
pub fn percent(v: f64) -> String {
    format!("{v:+.1} %")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(mbps(612.34), "612.3");
        assert_eq!(secs(1721.0), "1721 s");
        assert_eq!(secs(87.5), "87.5 s");
        assert_eq!(secs(2.6), "2.60 s");
        assert_eq!(percent(129.0), "+129.0 %");
        assert_eq!(percent(-47.1), "-47.1 %");
    }
}
