//! Shared plumbing for the experiment binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md §5) and prints it as an aligned text table, optionally as
//! CSV. A tiny hand-rolled flag parser keeps the workspace free of CLI
//! dependencies.

pub mod output;
pub mod trace_run;

pub use output::RunOutput;
pub use trace_run::{embed_counters, traced_next_touch_episode, TracedEpisode};

use std::env;

/// Parsed common command-line options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit CSV instead of the aligned table.
    pub csv: bool,
    /// Run the full paper-sized parameter sweep (default: a reduced sweep
    /// that finishes in seconds).
    pub full: bool,
    /// Print per-run diagnostics.
    pub verbose: bool,
    /// Workload seed for experiments with randomized access orders.
    /// The same seed always regenerates byte-identical tables.
    pub seed: u64,
    /// Write a Chrome-trace-format event trace of a representative run to
    /// this file (loadable in Perfetto / chrome://tracing).
    pub trace: Option<String>,
    /// Write the run's tables and metadata as machine-readable JSON to
    /// this file (e.g. `results/fig5.json`).
    pub json: Option<String>,
    /// Host threads for the sweep runner (`--jobs`, or the
    /// `NUMA_BENCH_JOBS` environment variable when the flag is absent;
    /// default 1). Sweeps distribute their independent items over this
    /// many threads; every simulation stays single-threaded and the
    /// emitted tables/JSON are byte-identical to a `--jobs 1` run.
    pub jobs: usize,
    /// Shards for the sharded engine (`--shards`, default 1). Only the
    /// `multitenant` workload uses it; output is byte-identical for any
    /// value (engine-level parallelism, deterministic window merge).
    pub shards: usize,
}

/// Environment variable consulted for the default `--jobs` value.
pub const JOBS_ENV: &str = "NUMA_BENCH_JOBS";

/// Why [`Options::try_parse_from`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help`/`-h` was given; the caller should print usage and exit 0.
    Help,
    /// A real parse error with its message.
    Invalid(String),
}

impl Options {
    /// Parse an explicit argument list. Every value-taking flag accepts
    /// both `--flag value` and `--flag=value`.
    pub fn try_parse_from<I>(args: I) -> Result<Options, ParseError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut o = Options {
            jobs: threadpool::jobs_from_env(JOBS_ENV).unwrap_or(1),
            shards: 1,
            ..Options::default()
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let mut value = |flag: &str| -> Result<String, ParseError> {
                match inline.clone().or_else(|| args.next()) {
                    Some(v) => Ok(v),
                    None => Err(ParseError::Invalid(format!("{flag} needs a value"))),
                }
            };
            match flag.as_str() {
                "--csv" => o.csv = true,
                "--full" => o.full = true,
                "--verbose" | "-v" => o.verbose = true,
                "--seed" => {
                    let v = value("--seed")?;
                    o.seed = v.parse().map_err(|_| {
                        ParseError::Invalid(format!("--seed takes an unsigned integer, got {v}"))
                    })?;
                }
                "--trace" => o.trace = Some(value("--trace")?),
                "--json" => o.json = Some(value("--json")?),
                "--jobs" | "-j" => {
                    let v = value("--jobs")?;
                    o.jobs = v.parse().ok().filter(|&j| j > 0).ok_or_else(|| {
                        ParseError::Invalid(format!("--jobs takes a positive integer, got {v}"))
                    })?;
                }
                "--shards" => {
                    let v = value("--shards")?;
                    o.shards = v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        ParseError::Invalid(format!("--shards takes a positive integer, got {v}"))
                    })?;
                }
                "--help" | "-h" => return Err(ParseError::Help),
                other => {
                    return Err(ParseError::Invalid(format!(
                        "unknown flag {other} (try --help)"
                    )))
                }
            }
            if inline.is_some() && matches!(flag.as_str(), "--csv" | "--full" | "--verbose" | "-v")
            {
                return Err(ParseError::Invalid(format!("{flag} takes no value")));
            }
        }
        Ok(o)
    }

    /// Parse `std::env::args`, exiting with usage on `--help` or unknown
    /// flags.
    pub fn parse(binary: &str, what: &str) -> Options {
        match Options::try_parse_from(env::args().skip(1)) {
            Ok(o) => o,
            Err(ParseError::Help) => {
                eprintln!("{binary}: regenerate {what}");
                eprintln!(
                    "usage: {binary} [--csv] [--full] [--verbose] [--seed <u64>] \
                     [--trace <file>] [--json <file>] [--jobs <n>] [--shards <n>]"
                );
                eprintln!("  --csv           emit CSV instead of an aligned table");
                eprintln!("  --full          run the paper-sized sweep (slower)");
                eprintln!("  --verbose       per-run diagnostics");
                eprintln!("  --seed <n>      workload seed (default 0); same seed, same table");
                eprintln!("  --trace <file>  write a Chrome/Perfetto event trace");
                eprintln!("  --json <file>   write the tables as machine-readable JSON");
                eprintln!(
                    "  --jobs <n>      host threads for the sweep (default \
                     $NUMA_BENCH_JOBS or 1); output is identical for any value"
                );
                eprintln!(
                    "  --shards <n>    shards for the sharded engine (multitenant only, \
                     default 1); output is identical for any value"
                );
                eprintln!("  (value flags also accept --flag=value)");
                std::process::exit(0);
            }
            Err(ParseError::Invalid(msg)) => {
                eprintln!("{binary}: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Start collecting this run's output. Tables passed to
    /// [`RunOutput::table`] are printed (honouring `--csv`) and recorded
    /// for the `--json` file; [`RunOutput::finish`] writes the `--json`
    /// and `--trace` files.
    pub fn open_output(&self, binary: &str) -> RunOutput {
        RunOutput::new(binary, self.clone())
    }

    /// Print a finished table per the output options.
    pub fn emit(&self, table: &numa_migrate::stats::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{table}");
        }
    }
}

/// Format MB/s with one decimal.
pub fn mbps(v: f64) -> String {
    format!("{v:.1}")
}

/// Build the tiering mechanism-comparison table (transactional vs
/// stop-the-world promotion under concurrent writers). Shared by the
/// `tiering` binary and the determinism regression test.
pub fn tiering_mechanism_table(
    writer_counts: &[usize],
    pages: u64,
    hot: u64,
    seed: u64,
    jobs: usize,
) -> numa_migrate::stats::Table {
    use numa_migrate::experiments::tiering;
    let mut table = numa_migrate::stats::Table::new([
        "writers", "txn-ms", "stw-ms", "commits", "aborts", "stalls", "txn-prom", "stw-prom",
    ]);
    for r in tiering::mechanism_jobs(writer_counts, pages, hot, seed, jobs) {
        table.row([
            r.writers.to_string(),
            format!("{:.3}", r.txn_writer_ns as f64 / 1e6),
            format!("{:.3}", r.stw_writer_ns as f64 / 1e6),
            r.txn_commits.to_string(),
            r.txn_aborts.to_string(),
            r.stw_stalls.to_string(),
            r.txn_promoted.to_string(),
            r.stw_promoted.to_string(),
        ]);
    }
    table
}

/// Build the tiering capacity-sweep table (app time vs hot-set size,
/// with the crossover where the hot set exceeds DRAM).
pub fn tiering_capacity_table(
    hot_page_counts: &[u64],
    dram_pages_per_node: u64,
    rounds: usize,
    jobs: usize,
) -> numa_migrate::stats::Table {
    use numa_migrate::experiments::tiering;
    let mut table = numa_migrate::stats::Table::new([
        "hot-pages",
        "dram-pages",
        "tiered-ms",
        "static-ms",
        "speedup",
        "promotions",
    ]);
    for r in tiering::capacity_sweep_jobs(hot_page_counts, dram_pages_per_node, rounds, jobs) {
        table.row([
            r.hot_pages.to_string(),
            r.dram_pages.to_string(),
            format!("{:.3}", r.tiered_ns as f64 / 1e6),
            format!("{:.3}", r.static_ns as f64 / 1e6),
            format!("{:.2}x", r.speedup()),
            r.promotions.to_string(),
        ]);
    }
    table
}

/// Build the chaos fault-injection sweep table: every workload at every
/// injection rate, each case executed twice and audited (see
/// `experiments::chaos`). Shared by the `chaos` binary and the
/// determinism regression test.
pub fn chaos_table(
    workloads: &[&'static str],
    rates: &[u32],
    seed: u64,
    jobs: usize,
) -> numa_migrate::stats::Table {
    use numa_migrate::experiments::chaos;
    let mut table = numa_migrate::stats::Table::new([
        "workload",
        "rate-ppm",
        "makespan-ms",
        "injected",
        "retried",
        "degraded",
        "gave-up",
        "moved",
        "left",
        "violations",
    ]);
    for r in chaos::sweep_jobs(workloads, rates, seed, jobs) {
        table.row([
            r.workload.to_string(),
            r.rate_ppm.to_string(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.injected.to_string(),
            r.retried.to_string(),
            r.degraded.to_string(),
            r.gave_up.to_string(),
            r.moved.to_string(),
            r.left_behind.to_string(),
            r.invariant_violations.to_string(),
        ]);
    }
    table
}

/// Build the memory-pressure sweep table: every redistribution strategy
/// at every occupancy, full pressure ladder enabled, each case executed
/// twice and audited (see `experiments::pressure`). Shared by the
/// `pressure` binary and the determinism regression test.
pub fn pressure_table(occupancies: &[u32], seed: u64, jobs: usize) -> numa_migrate::stats::Table {
    use numa_migrate::experiments::pressure;
    let mut table = numa_migrate::stats::Table::new([
        "strategy",
        "occupancy",
        "makespan-ms",
        "moved",
        "reclaimed",
        "evacuated",
        "oom-kills",
        "watchdog",
        "degraded",
        "retried",
        "violations",
    ]);
    for r in pressure::sweep_jobs(occupancies, seed, jobs) {
        table.row([
            r.strategy.to_string(),
            format!("{}%", r.occupancy_pct),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.moved.to_string(),
            r.reclaimed.to_string(),
            r.evacuated.to_string(),
            r.oom_kills.to_string(),
            r.watchdog_firings.to_string(),
            r.degraded.to_string(),
            r.retried.to_string(),
            r.violations.to_string(),
        ]);
    }
    table
}

/// Build the multitenant cohort table from a finished churn run.
/// Shared by the `multitenant` binary and the determinism regression
/// test; contains nothing shard- or job-dependent.
pub fn multitenant_table(
    outcome: &numa_migrate::experiments::multitenant::MultitenantOutcome,
) -> numa_migrate::stats::Table {
    let mut table = numa_migrate::stats::Table::new([
        "cohort",
        "tenants",
        "makespan-sum-ms",
        "makespan-max-ms",
        "local",
        "remote",
        "l3-misses",
    ]);
    for r in &outcome.rows {
        table.row([
            r.cohort.to_string(),
            r.tenants.to_string(),
            format!("{:.3}", r.makespan_sum_ns as f64 / 1e6),
            format!("{:.3}", r.makespan_max_ns as f64 / 1e6),
            r.local_accesses.to_string(),
            r.remote_accesses.to_string(),
            r.cache_misses.to_string(),
        ]);
    }
    table
}

/// The multitenant run's global fold as `--json` metadata (window
/// schedule, ledger pressure, kernel counters). Every value is a
/// deterministic function of (tenants, seed); `--shards`/`--jobs` are
/// deliberately absent so the file is byte-identical for any host
/// parallelism.
pub fn multitenant_summary(
    outcome: &numa_migrate::experiments::multitenant::MultitenantOutcome,
) -> numa_migrate::stats::Json {
    numa_migrate::stats::Json::obj()
        .set("tenants", outcome.tenants)
        .set("makespan_ns", outcome.makespan_ns)
        .set("window_ns", outcome.window_ns)
        .set("windows", outcome.windows)
        .set("windows_skipped", outcome.windows_skipped)
        .set("ledger_grants", outcome.ledger_grants)
        .set("ledger_denials", outcome.ledger_denials)
        .set("ledger_yields", outcome.ledger_yields)
        .set("flush_windows", outcome.flush_windows)
        .set("moved_syscall", outcome.moved_syscall)
        .set("moved_fault", outcome.moved_fault)
        .set("frames_freed", outcome.frames_freed)
        .set("oom_kills", outcome.oom_kills)
        .set("tlb_shootdowns", outcome.tlb_shootdowns)
}

/// Format seconds with adaptive precision (the paper's Table 1 style).
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0} s")
    } else if v >= 10.0 {
        format!("{v:.1} s")
    } else if v >= 0.1 {
        format!("{v:.2} s")
    } else {
        format!("{:.2} ms", v * 1e3)
    }
}

/// Format a signed percentage (the paper's Improvement column).
pub fn percent(v: f64) -> String {
    format!("{v:+.1} %")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(mbps(612.34), "612.3");
        assert_eq!(secs(1721.0), "1721 s");
        assert_eq!(secs(87.5), "87.5 s");
        assert_eq!(secs(2.6), "2.60 s");
        assert_eq!(percent(129.0), "+129.0 %");
        assert_eq!(percent(-47.1), "-47.1 %");
    }
}
