//! The shared traced next-touch episode behind every binary's `--trace`
//! default, and the determinism / reconciliation regression tests.
//!
//! The episode is the paper's core scenario: a buffer populated on node 0,
//! marked migrate-on-next-touch, then touched from node-1 and node-2 cores
//! in a seed-shuffled page order. Population happens *before* tracing is
//! enabled, so the exported trace covers exactly the measured run — which
//! is what lets [`TracedEpisode::trace_totals`] reconcile, component by
//! component, with the run's `Breakdown`.

use numa_migrate::machine::{Machine, MemAccessKind, Op, ThreadSpec, UtilisationReport};
use numa_migrate::rt::{setup, Buffer};
use numa_migrate::stats::{Breakdown, Counters, Json};
use numa_migrate::topology::{CoreId, NodeId};
use numa_migrate::vm::{PageRange, PAGE_SIZE};

/// Everything a traced episode produces.
pub struct TracedEpisode {
    /// Chrome-trace-format JSON (Perfetto-loadable), with the run's
    /// event counters embedded as a top-level `"counters"` object.
    pub chrome_json: String,
    /// The run's cost breakdown, as returned by the engine.
    pub breakdown: Breakdown,
    /// Per-component totals recovered by summing the trace's span events.
    /// Equal to `breakdown` whenever no events were dropped.
    pub trace_totals: Breakdown,
    /// Resource busy/wait/utilisation over the run.
    pub utilisation: UtilisationReport,
    /// The run's makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Events dropped by the bounded trace buffer (0 for this episode's
    /// default capacity).
    pub dropped: u64,
    /// Kernel + run event counters (fault-path, migration, and — when a
    /// fault plan is installed — injection/retry/degradation totals).
    pub counters: Counters,
}

/// Splice `counters` into a Chrome-trace JSON document as a top-level
/// `"counters"` object, so the exported trace carries the run's event
/// totals alongside the event stream. Perfetto ignores unknown top-level
/// keys, so the file stays loadable.
pub fn embed_counters(chrome_json: &str, counters: &Counters) -> String {
    let mut obj = Json::obj();
    for (k, v) in counters.iter() {
        obj = obj.set(format!("{k:?}"), v);
    }
    let body = chrome_json
        .trim_end()
        .strip_suffix('}')
        .expect("chrome trace JSON must be an object");
    format!("{body},\"counters\":{obj}}}")
}

/// Splitmix64: tiny, deterministic, and plenty for shuffling page orders.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn shuffled(pages: std::ops::Range<u64>, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = pages.collect();
    let mut s = seed ^ 0xdead_beef_cafe_f00d;
    for i in (1..v.len()).rev() {
        let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// Run the shared traced episode with `seed` and return its artefacts.
///
/// Deterministic: the same seed produces a byte-identical
/// [`TracedEpisode::chrome_json`]; different seeds shuffle the touch
/// order and so change the event stream.
pub fn traced_next_touch_episode(seed: u64) -> TracedEpisode {
    const PAGES: u64 = 64;
    let mut m = Machine::opteron_4p();
    let buf = Buffer::alloc(&mut m, PAGES * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    m.reset_contention();
    m.flush_caches();
    m.enable_trace(1 << 16);

    // Two remote threads each mark and then touch one half of the buffer
    // in a seed-shuffled order, separated by a barrier so marking never
    // races the touches.
    let half = PAGES / 2;
    let mk_ops = |first_page: u64, core_seed: u64| {
        let range = PageRange::new(
            buf.addr.vpn() + first_page,
            buf.addr.vpn() + first_page + half,
        );
        let mut ops = vec![Op::MadviseNextTouch { range }, Op::Barrier(0)];
        for p in shuffled(first_page..first_page + half, core_seed) {
            ops.push(Op::read(
                buf.addr + p * PAGE_SIZE,
                64,
                MemAccessKind::Random,
            ));
        }
        ops
    };
    let threads = vec![
        ThreadSpec::scripted(CoreId(4), mk_ops(0, seed)),
        ThreadSpec::scripted(CoreId(8), mk_ops(half, seed.wrapping_add(1))),
    ];
    let r = m.run(threads, &[2]);

    let mut counters = m.kernel.counters.clone();
    counters.merge(&r.stats.counters);
    TracedEpisode {
        chrome_json: embed_counters(&m.trace.chrome_trace_json(), &counters),
        trace_totals: m.trace.component_totals(),
        utilisation: m.utilisation_report(r.makespan),
        makespan_ns: r.makespan.ns(),
        dropped: m.trace.dropped(),
        breakdown: r.stats.breakdown,
        counters,
    }
}
