//! Per-run output collection: printed tables, the machine-readable
//! `--json` results file, and the `--trace` Chrome-trace export.
//!
//! Every experiment binary opens a [`RunOutput`] from its parsed
//! [`crate::Options`], feeds each finished table through
//! [`RunOutput::table`] (which both prints it and records it), and calls
//! [`RunOutput::finish`] at the end. With neither `--json` nor `--trace`
//! given, `finish` is a no-op beyond the printing already done.

use crate::Options;
use numa_migrate::stats::{Json, Table};
use std::path::Path;

/// Collects one binary run's tables and metadata.
pub struct RunOutput {
    binary: String,
    opts: Options,
    tables: Vec<(String, Table)>,
    meta: Vec<(String, Json)>,
    trace_json: Option<String>,
}

impl RunOutput {
    /// Start collecting for `binary` under the parsed options.
    pub fn new(binary: &str, opts: Options) -> Self {
        RunOutput {
            binary: binary.to_string(),
            opts,
            tables: Vec::new(),
            meta: Vec::new(),
            trace_json: None,
        }
    }

    /// Print `table` under `title` (honouring `--csv`) and record it for
    /// the `--json` file. The title is printed verbatim followed by a
    /// blank line; embed a leading `\n` for visual separation between
    /// consecutive tables.
    pub fn table(&mut self, title: &str, table: &Table) {
        println!("{title}\n");
        self.opts.emit(table);
        self.tables.push((title.trim().to_string(), table.clone()));
    }

    /// Attach an extra key/value to the `--json` document root.
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Override the `--trace` file contents with a trace produced by this
    /// binary's own run (the default is a representative seeded
    /// next-touch episode, see [`crate::traced_next_touch_episode`]).
    pub fn set_trace_json(&mut self, chrome_trace: String) {
        self.trace_json = Some(chrome_trace);
    }

    /// Build the `--json` document (exposed for tests).
    pub fn results_json(&self) -> Json {
        let tables: Vec<Json> = self
            .tables
            .iter()
            .map(|(title, t)| {
                let mut obj = Json::obj().set("title", title.as_str());
                if let (Json::Obj(pairs), Json::Obj(shape)) = (&mut obj, t.to_json()) {
                    pairs.extend(shape);
                }
                obj
            })
            .collect();
        let mut root = Json::obj()
            .set("binary", self.binary.as_str())
            .set("seed", self.opts.seed)
            .set("full", self.opts.full)
            .set("tables", tables);
        if let Json::Obj(pairs) = &mut root {
            pairs.extend(self.meta.iter().cloned());
        }
        root
    }

    /// Write the `--json` and `--trace` files, if requested. Creates
    /// parent directories (e.g. `results/`) as needed.
    pub fn finish(self) {
        if let Some(path) = self.opts.json.clone() {
            write_file(&self.binary, &path, &self.results_json().to_string());
        }
        if let Some(path) = self.opts.trace.clone() {
            let trace = match self.trace_json {
                Some(t) => t,
                None => crate::traced_next_touch_episode(self.opts.seed).chrome_json,
            };
            write_file(&self.binary, &path, &trace);
        }
    }
}

fn write_file(binary: &str, path: &str, contents: &str) {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("{binary}: cannot create {}: {e}", parent.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("{binary}: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("{binary}: wrote {path}");
}
