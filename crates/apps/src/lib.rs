//! Workloads for the simulated NUMA machine.
//!
//! Everything the paper's evaluation section runs:
//!
//! * [`lu`] — the threaded blocked LU factorization of §4.5 / Table 1,
//!   with the per-iteration next-touch hook, column-major storage (so the
//!   sub-page block-sharing effect is real) and an optional real-numerics
//!   mode validated against an oracle;
//! * [`gemm`] — the 16 independent BLAS3 multiplications of Figure 8;
//! * [`blas1`] — the BLAS1 (daxpy) experiment the paper describes in
//!   prose: migration never helps vector operations;
//! * [`amr`] — an adaptive-mesh-refinement-style stencil, the motivating
//!   "highly-dynamic application" of §2.2, used by the examples;
//! * [`blas`] — the real (host-executed) math kernels and their tests;
//! * [`matrix`] — column-major matrices in simulated memory;
//! * [`model`] — the traffic model tying flops to DRAM bytes.

pub mod amr;
pub mod blas;
pub mod blas1;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod model;
pub mod pde;

pub use lu::{LuConfig, LuResult};
pub use matrix::SimMatrix;
