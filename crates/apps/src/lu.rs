//! The threaded blocked LU factorization of §4.5 / Table 1.
//!
//! Right-looking blocked LU without pivoting over a column-major matrix:
//! at step `k` the diagonal block is factorized (single region), the row
//! and column panels are solved (`parallel for`), and the trailing blocks
//! are GEMM-updated (`parallel for`). Exactly like the paper, a
//! next-touch hook runs **at the beginning of each iteration** over the
//! trailing submatrix, "so that the data is redistributed among the NUMA
//! nodes when needed, depending on OpenMP thread access patterns"; the
//! matrix is initially interleaved across all nodes (the best static
//! policy for this bandwidth-bound problem).

use crate::matrix::{DataMode, SimMatrix};
use crate::{blas, model};
use numa_machine::{Machine, Op, RunStats};
use numa_rt::{MigrationStrategy, Schedule, Team, UserNextTouch, WorkPlan};
use numa_sim::SimTime;
use numa_stats::Counters;

/// Parameters of one LU run.
#[derive(Debug, Clone)]
pub struct LuConfig {
    /// Matrix dimension (`n x n` doubles). Must be a multiple of `bs`.
    pub n: u64,
    /// Block dimension.
    pub bs: u64,
    /// Number of OpenMP threads (the paper uses 16, one per core).
    pub threads: usize,
    /// How data follows threads.
    pub strategy: MigrationStrategy,
    /// Loop schedule for the update loops.
    pub schedule: Schedule,
    /// Real numerics or phantom access patterns.
    pub mode: DataMode,
    /// PRNG seed for the matrix fill.
    pub seed: u64,
}

impl LuConfig {
    /// A small real-math configuration (tests, quickstart).
    pub fn small(n: u64, bs: u64) -> LuConfig {
        LuConfig {
            n,
            bs,
            threads: 16,
            strategy: MigrationStrategy::KernelNextTouch,
            schedule: Schedule::Static,
            mode: DataMode::Real,
            seed: 42,
        }
    }

    /// A phantom configuration for parameter sweeps (Table 1 rows).
    ///
    /// Uses `Schedule::Dynamic(1)`: the paper stresses that with the GCC
    /// OpenMP runtime "there is no guarantee about which thread will
    /// compute which block on which processor" (§4.5) — first-come chunk
    /// claiming reproduces that scattering, which is what makes
    /// vertically-adjacent blocks (page-sharing below bs = 512) land on
    /// different threads and ping-pong.
    pub fn sweep(n: u64, bs: u64, strategy: MigrationStrategy) -> LuConfig {
        LuConfig {
            n,
            bs,
            threads: 16,
            strategy,
            schedule: Schedule::Dynamic(1),
            mode: DataMode::Phantom,
            seed: 42,
        }
    }
}

/// Outcome of one LU run.
#[derive(Debug, Clone)]
pub struct LuResult {
    /// Virtual factorization time.
    pub time: SimTime,
    /// Engine statistics (breakdown + access counters).
    pub stats: RunStats,
    /// Kernel counters accumulated during the run.
    pub kernel_counters: Counters,
    /// Max abs error of `L*U` against the original matrix
    /// (`None` in phantom mode).
    pub residual: Option<f64>,
}

/// Factorize on `machine` per `cfg`.
///
/// Panics if `n` is not a multiple of `bs` or the team exceeds the
/// machine's cores — both are experiment-configuration errors.
pub fn run_lu(machine: &mut Machine, cfg: &LuConfig) -> LuResult {
    assert!(cfg.n.is_multiple_of(cfg.bs), "n must be a multiple of bs");
    assert!(cfg.bs >= 2, "block size must be at least 2");
    let nb = cfg.n / cfg.bs;
    assert!(nb >= 1);

    let a = SimMatrix::alloc_interleaved(machine, cfg.n, cfg.mode);
    a.fill_diag_dominant(cfg.seed);
    let original = a.data.as_ref().map(|d| d.borrow().clone());

    // Populate per the interleave policy before the timed region (the
    // paper's initialisation is untimed).
    numa_rt::setup::populate_on_node(machine, &a.buffer, numa_topology::NodeId(0));

    // The user-space next-touch runtime, installed only when used.
    let user_nt = UserNextTouch::new();
    if cfg.strategy == MigrationStrategy::UserNextTouch {
        machine.set_segv_handler(user_nt.handler());
    }

    let mut plan = WorkPlan::new();
    for k in 0..nb {
        add_step_phases(&mut plan, &a, cfg, k, nb, &user_nt);
    }

    let counters_before = machine.kernel.counters.clone();
    let team = Team::all_cores(machine).take(cfg.threads);
    assert!(
        team.len() == cfg.threads,
        "machine has fewer cores than requested threads"
    );
    let result = team.run(machine, plan);
    if cfg.strategy == MigrationStrategy::UserNextTouch {
        machine.clear_segv_handler();
    }

    let mut kernel_counters = machine.kernel.counters.clone();
    // Report only this run's events.
    let mut delta = Counters::new();
    for (k, v) in kernel_counters.iter() {
        let before = counters_before.get(k);
        if v > before {
            delta.add(k, v - before);
        }
    }
    kernel_counters = delta;

    let residual = original.map(|orig| {
        let factored = a.snapshot();
        SimMatrix::lu_residual(&orig, &factored, cfg.n as usize)
    });

    LuResult {
        time: result.makespan,
        stats: result.stats,
        kernel_counters,
        residual,
    }
}

/// Append the three phases of LU step `k` (plus the next-touch hook).
fn add_step_phases(
    plan: &mut WorkPlan,
    a: &SimMatrix,
    cfg: &LuConfig,
    k: u64,
    nb: u64,
    user_nt: &UserNextTouch,
) {
    let bs = cfg.bs;
    let n = cfg.n;

    // ------------------------------------------------ next-touch hook
    // Mark the trailing columns at the start of each iteration (§4.5).
    match cfg.strategy {
        MigrationStrategy::Static => {}
        MigrationStrategy::KernelNextTouch => {
            let tail = a.columns_buffer(k * bs, n);
            plan.single(move || {
                vec![Op::MadviseNextTouch {
                    range: tail.page_range(),
                }]
            });
        }
        MigrationStrategy::UserNextTouch => {
            // Region per trailing block column, so columns migrate
            // independently (the granularity §3.4 recommends).
            let regions: Vec<numa_rt::Buffer> = (k..nb)
                .map(|bj| a.columns_buffer(bj * bs, (bj + 1) * bs))
                .collect();
            let nt = user_nt.clone();
            plan.single(move || nt.mark_regions_ops(&regions));
        }
        MigrationStrategy::Sync => {
            // Synchronous redistribution has no sensible single
            // destination for a shared trailing matrix; the paper's
            // comparison is static vs next-touch. Treat as static.
        }
    }

    // ------------------------------------------------ diagonal block
    {
        let a2 = a.clone();
        plan.single(move || {
            a2.with_data(|d, n| {
                blas::dgetrf_nopiv(d, n, (k * bs) as usize, (k * bs) as usize, bs as usize)
            });
            vec![
                a2.block_access(k, k, bs, model::getrf_traffic(bs), true),
                Op::Compute {
                    flops: model::getrf_flops(bs),
                    efficiency: model::PANEL_EFFICIENCY,
                },
            ]
        });
    }

    // ------------------------------------------------ panels
    let panels = (nb - k - 1) * 2;
    if panels > 0 {
        let a2 = a.clone();
        plan.parallel_for(panels as usize, cfg.schedule, move |idx| {
            let i = k + 1 + (idx as u64) / 2;
            let row_panel = idx % 2 == 0;
            let (bi, bj) = if row_panel { (k, i) } else { (i, k) };
            a2.with_data(|d, n| {
                let (kb, ib) = ((k * bs) as usize, (i * bs) as usize);
                if row_panel {
                    blas::dtrsm_lower_unit(d, n, kb, kb, kb, ib, bs as usize);
                } else {
                    blas::dtrsm_upper(d, n, kb, kb, ib, kb, bs as usize);
                }
            });
            vec![
                a2.block_access(k, k, bs, model::trsm_traffic(bs) / 2, false),
                a2.block_access(bi, bj, bs, model::trsm_traffic(bs) / 2, true),
                Op::Compute {
                    flops: model::trsm_flops(bs),
                    efficiency: model::PANEL_EFFICIENCY,
                },
            ]
        });
    }

    // ------------------------------------------------ trailing update
    let w = nb - k - 1;
    if w > 0 {
        let a2 = a.clone();
        plan.parallel_for((w * w) as usize, cfg.schedule, move |idx| {
            let i = k + 1 + (idx as u64) % w;
            let j = k + 1 + (idx as u64) / w;
            a2.with_data(|d, n| {
                blas::dgemm_block(
                    d,
                    n,
                    (i * bs) as usize,
                    (j * bs) as usize,
                    (i * bs) as usize,
                    (k * bs) as usize,
                    (k * bs) as usize,
                    (j * bs) as usize,
                    bs as usize,
                )
            });
            let traffic = model::gemm_traffic(bs);
            vec![
                a2.block_access(i, k, bs, traffic * 2 / 5, false),
                a2.block_access(k, j, bs, traffic * 2 / 5, false),
                a2.block_access(i, j, bs, traffic / 5, true),
                Op::Compute {
                    flops: model::gemm_flops(bs),
                    efficiency: model::BLAS3_EFFICIENCY,
                },
            ]
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_stats::Counter;

    #[test]
    fn real_lu_is_numerically_correct_static() {
        let mut m = Machine::opteron_4p();
        let cfg = LuConfig {
            strategy: MigrationStrategy::Static,
            ..LuConfig::small(64, 16)
        };
        let r = run_lu(&mut m, &cfg);
        let resid = r.residual.unwrap();
        assert!(resid < 1e-9, "residual {resid}");
        assert!(r.time > SimTime::ZERO);
    }

    #[test]
    fn real_lu_is_numerically_correct_with_kernel_next_touch() {
        let mut m = Machine::opteron_4p();
        let cfg = LuConfig {
            strategy: MigrationStrategy::KernelNextTouch,
            ..LuConfig::small(64, 16)
        };
        let r = run_lu(&mut m, &cfg);
        let resid = r.residual.unwrap();
        assert!(resid < 1e-9, "residual {resid}");
        assert!(
            r.kernel_counters.get(Counter::PagesMarkedNextTouch) > 0,
            "hook must have marked pages"
        );
        assert!(r.kernel_counters.get(Counter::NextTouchFaults) > 0);
    }

    #[test]
    fn real_lu_with_user_next_touch_still_correct() {
        let mut m = Machine::opteron_4p();
        let cfg = LuConfig {
            strategy: MigrationStrategy::UserNextTouch,
            ..LuConfig::small(64, 16)
        };
        let r = run_lu(&mut m, &cfg);
        let resid = r.residual.unwrap();
        assert!(resid < 1e-9, "residual {resid}");
        assert!(r.kernel_counters.get(Counter::SegvSignals) > 0);
    }

    #[test]
    fn dynamic_schedule_also_correct() {
        let mut m = Machine::opteron_4p();
        let cfg = LuConfig {
            schedule: Schedule::Dynamic(1),
            ..LuConfig::small(48, 16)
        };
        let r = run_lu(&mut m, &cfg);
        assert!(r.residual.unwrap() < 1e-9);
    }

    #[test]
    fn phantom_mode_runs_and_times() {
        let mut m = Machine::opteron_4p();
        let cfg = LuConfig::sweep(256, 64, MigrationStrategy::Static);
        let r = run_lu(&mut m, &cfg);
        assert!(r.residual.is_none());
        assert!(r.time > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "multiple of bs")]
    fn bad_block_size_rejected() {
        let mut m = Machine::opteron_4p();
        run_lu(&mut m, &LuConfig::small(100, 16));
    }
}
