//! The workload traffic model.
//!
//! The simulator charges a block operation's memory cost as a *byte
//! volume* spread over the pages it touches (see `Op::AccessStrided`).
//! This module fixes how many bytes a kernel of a given flop count moves.
//!
//! Calibration target: the paper's LU numbers imply an effective rate of
//! ~0.25–1.1 GFlop/s per core (Table 1: e.g. 8k×8k static in 87.5 s over
//! 16 threads ≈ 0.26 GFlop/s/core) on cores whose SSE2 peak is 3.8 — their
//! BLAS was strongly memory-bound. A naive-to-moderately-blocked GEMM
//! misses on roughly one operand element per inner iteration, i.e. about
//! 2 bytes of DRAM traffic per flop when tiles exceed the cache; with a
//! ~3 GB/s per-core DRAM path that lands in exactly the observed band.

/// DRAM bytes moved per floating-point operation by a BLAS3-class kernel
/// whose working set exceeds the shared L3.
pub const BLAS3_BYTES_PER_FLOP: f64 = 2.0;

/// Efficiency (fraction of core peak) of the BLAS3 compute itself,
/// excluding memory stalls (the simulator charges those separately).
pub const BLAS3_EFFICIENCY: f64 = 0.80;

/// Efficiency for the small, latency-bound dgetrf/dtrsm panel kernels.
pub const PANEL_EFFICIENCY: f64 = 0.50;

/// DRAM traffic of a `bs x bs` GEMM update (`C -= A * B`), in bytes.
pub fn gemm_traffic(bs: u64) -> u64 {
    (gemm_flops(bs) as f64 * BLAS3_BYTES_PER_FLOP) as u64
}

/// Flops of a `bs x bs` GEMM update.
pub fn gemm_flops(bs: u64) -> u64 {
    2 * bs * bs * bs
}

/// Flops of an unblocked LU factorization of a `bs x bs` tile.
pub fn getrf_flops(bs: u64) -> u64 {
    2 * bs * bs * bs / 3
}

/// DRAM traffic of the `bs x bs` dgetrf tile kernel.
pub fn getrf_traffic(bs: u64) -> u64 {
    (getrf_flops(bs) as f64 * BLAS3_BYTES_PER_FLOP) as u64
}

/// Flops of a triangular solve of a `bs x bs` tile against a `bs x bs`
/// triangle.
pub fn trsm_flops(bs: u64) -> u64 {
    bs * bs * bs
}

/// DRAM traffic of the `bs x bs` dtrsm tile kernel.
pub fn trsm_traffic(bs: u64) -> u64 {
    (trsm_flops(bs) as f64 * BLAS3_BYTES_PER_FLOP) as u64
}

/// Total flops of an `n x n` LU factorization (2/3 n^3 to leading order).
pub fn lu_total_flops(n: u64) -> u64 {
    2 * n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_scales_cubically() {
        assert_eq!(gemm_flops(2), 16);
        assert!(gemm_traffic(512) > gemm_traffic(256) * 7);
        assert!(gemm_traffic(512) < gemm_traffic(256) * 9);
    }

    #[test]
    fn flop_counts_consistent() {
        // One step of blocked LU on a 2x2 block grid must account for
        // roughly the full factorization cost.
        let bs = 64;
        let step = getrf_flops(bs) + 2 * trsm_flops(bs) + gemm_flops(bs);
        let full = lu_total_flops(2 * bs);
        // Blocked flops within 20% of the closed form (lower-order terms).
        let ratio = step as f64 / full as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn implied_core_rate_matches_paper_band() {
        // With 2 bytes/flop at 3 GB/s a memory-bound core sustains
        // ~1.5 GFlop/s before NUMA penalties and contention — the paper's
        // numbers (0.25–1.1 after those penalties) must sit below this.
        let implied = 3.0 / BLAS3_BYTES_PER_FLOP; // GFlop/s
        assert!((1.0..2.5).contains(&implied));
    }
}
