//! An adaptive-mesh-refinement-style workload.
//!
//! The paper motivates next-touch with "highly-dynamic applications such
//! as adaptive mesh refinement \[whose\] thread/data affinities actually
//! vary during the execution since the amount of computation in each
//! buffer depends on earlier results" (§2.2). This module provides that
//! shape: a set of patches whose weights evolve between phases, a dynamic
//! `parallel for` that reassigns patches to whichever thread is free, and
//! a per-phase next-touch hook that lets patch data chase its current
//! worker.

use numa_machine::{Machine, MemAccessKind, Op, RunResult};
use numa_rt::{setup, Buffer, MigrationStrategy, Schedule, Team, WorkPlan};
use numa_sim::Splitmix64;
use numa_topology::NodeId;

/// Parameters of the AMR-style run.
#[derive(Debug, Clone)]
pub struct AmrConfig {
    /// Number of mesh patches.
    pub patches: usize,
    /// Bytes per patch.
    pub patch_bytes: u64,
    /// Number of compute phases (weights evolve between phases).
    pub phases: u32,
    /// Number of worker threads.
    pub threads: usize,
    /// Fraction of patches refined (weight doubled) per phase, in
    /// hundredths (e.g. 10 = 10 %).
    pub refine_percent: u64,
    /// Stencil sweeps per phase: each sweep re-reads the whole patch, so
    /// this controls how much locality pays off once a patch has migrated.
    pub sweeps: u64,
    /// Static placement or kernel next-touch redistribution.
    pub strategy: MigrationStrategy,
    /// PRNG seed for refinement choices.
    pub seed: u64,
}

impl AmrConfig {
    /// A representative configuration.
    pub fn demo(strategy: MigrationStrategy) -> Self {
        AmrConfig {
            patches: 64,
            patch_bytes: 1 << 20,
            phases: 8,
            threads: 16,
            refine_percent: 10,
            sweeps: 16,
            strategy,
            seed: 7,
        }
    }
}

/// Run the workload; returns the engine result and the final per-patch
/// weights.
pub fn run_amr(machine: &mut Machine, cfg: &AmrConfig) -> (RunResult, Vec<u64>) {
    let mut buffers = Vec::with_capacity(cfg.patches);
    for _ in 0..cfg.patches {
        let b = Buffer::alloc(machine, cfg.patch_bytes);
        setup::populate_on_node(machine, &b, NodeId(0));
        buffers.push(b);
    }

    // Weight evolution is precomputed deterministically so the plan can be
    // built up front (the *assignment* of patches to threads remains
    // dynamic, decided at run time by the dynamic schedule).
    let mut rng = Splitmix64::new(cfg.seed);
    let mut weights = vec![1u64; cfg.patches];
    let mut weights_per_phase = Vec::with_capacity(cfg.phases as usize);
    for _ in 0..cfg.phases {
        weights_per_phase.push(weights.clone());
        let refinements = (cfg.patches as u64 * cfg.refine_percent / 100).max(1);
        for _ in 0..refinements {
            let p = rng.below(cfg.patches as u64) as usize;
            weights[p] = (weights[p] * 2).min(64);
        }
    }

    let mut plan = WorkPlan::new();
    for phase_weights in weights_per_phase.iter().take(cfg.phases as usize) {
        if cfg.strategy == MigrationStrategy::KernelNextTouch {
            let bufs = buffers.clone();
            plan.single(move || {
                bufs.iter()
                    .flat_map(|b| MigrationStrategy::KernelNextTouch.ops(b, None))
                    .collect()
            });
        }
        let bufs = buffers.clone();
        let w = phase_weights.clone();
        let sweeps = cfg.sweeps;
        plan.parallel_for(cfg.patches, Schedule::Dynamic(1), move |p| {
            let b = &bufs[p];
            let weight = w[p];
            vec![
                Op::Access {
                    addr: b.addr,
                    bytes: b.len,
                    traffic: b.len * weight * sweeps,
                    write: true,
                    kind: MemAccessKind::Blocked,
                },
                Op::Compute {
                    flops: weight * sweeps * b.len / 4,
                    efficiency: 0.6,
                },
            ]
        });
    }

    let team = Team::all_cores(machine).take(cfg.threads);
    let result = team.run(machine, plan);
    (result, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_evolve_deterministically() {
        let mut m1 = Machine::opteron_4p();
        let mut m2 = Machine::opteron_4p();
        let cfg = AmrConfig {
            patches: 16,
            patch_bytes: 32 << 10,
            phases: 4,
            threads: 8,
            refine_percent: 20,
            sweeps: 4,
            strategy: MigrationStrategy::Static,
            seed: 3,
        };
        let (r1, w1) = run_amr(&mut m1, &cfg);
        let (r2, w2) = run_amr(&mut m2, &cfg);
        assert_eq!(w1, w2);
        assert_eq!(r1.makespan, r2.makespan, "simulation must be deterministic");
        assert!(w1.iter().any(|w| *w > 1), "some patch must have refined");
    }

    #[test]
    fn next_touch_spreads_patches_off_node0() {
        let mut m = Machine::opteron_4p();
        let cfg = AmrConfig {
            strategy: MigrationStrategy::KernelNextTouch,
            ..AmrConfig::demo(MigrationStrategy::KernelNextTouch)
        };
        let patches = cfg.patches;
        let patch_bytes = cfg.patch_bytes;
        let (_, _) = run_amr(&mut m, &cfg);
        // After the run, node 0 cannot still hold everything.
        let total_pages = patches as u64 * patch_bytes.div_ceil(numa_vm::PAGE_SIZE);
        let on0 = m.frames.live_on(NodeId(0));
        assert!(
            on0 < total_pages,
            "next-touch must have moved some patches off node 0 ({on0}/{total_pages})"
        );
    }

    #[test]
    fn next_touch_helps_the_dynamic_workload() {
        let time = |strategy| {
            let mut m = Machine::opteron_4p();
            run_amr(&mut m, &AmrConfig::demo(strategy)).0.makespan
        };
        let stat = time(MigrationStrategy::Static);
        let nt = time(MigrationStrategy::KernelNextTouch);
        assert!(
            nt < stat,
            "next-touch ({nt}) must beat static ({stat}) on the AMR workload"
        );
    }
}
