//! Real (host-executed) BLAS-like kernels over column-major storage.
//!
//! These run actual `f64` math when a workload is in `DataMode::Real`, so
//! the blocked LU can be validated against a reference factorization.
//! All kernels address a tile at element origin `(i0, j0)` inside an
//! `n x n` column-major matrix `a` (index `a[j * n + i]`).

/// `C -= A * B` for `bs x bs` tiles at the given origins.
/// `c(i0c, j0c) -= a(i0a, j0a) * b(i0b, j0b)`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_block(
    a: &mut [f64],
    n: usize,
    i0c: usize,
    j0c: usize,
    i0a: usize,
    j0a: usize,
    i0b: usize,
    j0b: usize,
    bs: usize,
) {
    for j in 0..bs {
        for k in 0..bs {
            let bkj = a[(j0b + j) * n + i0b + k];
            if bkj == 0.0 {
                continue;
            }
            for i in 0..bs {
                let aik = a[(j0a + k) * n + i0a + i];
                a[(j0c + j) * n + i0c + i] -= aik * bkj;
            }
        }
    }
}

/// Unblocked, pivot-free LU of the `bs x bs` tile at `(i0, j0)`:
/// in place, L unit-lower, U upper.
pub fn dgetrf_nopiv(a: &mut [f64], n: usize, i0: usize, j0: usize, bs: usize) {
    for k in 0..bs {
        let pivot = a[(j0 + k) * n + i0 + k];
        assert!(
            pivot.abs() > 1e-300,
            "zero pivot at {k} — matrix not suitable for pivot-free LU"
        );
        for i in (k + 1)..bs {
            a[(j0 + k) * n + i0 + i] /= pivot;
        }
        for j in (k + 1)..bs {
            let ukj = a[(j0 + j) * n + i0 + k];
            if ukj == 0.0 {
                continue;
            }
            for i in (k + 1)..bs {
                let lik = a[(j0 + k) * n + i0 + i];
                a[(j0 + j) * n + i0 + i] -= lik * ukj;
            }
        }
    }
}

/// Solve `L * X = B` in place where `L` is the unit-lower triangle of the
/// tile at `(i0l, j0l)` and `B`/`X` is the tile at `(i0b, j0b)` — the
/// row-panel update of blocked LU.
#[allow(clippy::too_many_arguments)]
pub fn dtrsm_lower_unit(
    a: &mut [f64],
    n: usize,
    i0l: usize,
    j0l: usize,
    i0b: usize,
    j0b: usize,
    bs: usize,
) {
    for j in 0..bs {
        for k in 0..bs {
            let xkj = a[(j0b + j) * n + i0b + k];
            if xkj == 0.0 {
                continue;
            }
            for i in (k + 1)..bs {
                let lik = a[(j0l + k) * n + i0l + i];
                a[(j0b + j) * n + i0b + i] -= lik * xkj;
            }
        }
    }
}

/// Solve `X * U = B` in place where `U` is the upper triangle of the tile
/// at `(i0u, j0u)` and `B`/`X` is the tile at `(i0b, j0b)` — the
/// column-panel update of blocked LU.
#[allow(clippy::too_many_arguments)]
pub fn dtrsm_upper(
    a: &mut [f64],
    n: usize,
    i0u: usize,
    j0u: usize,
    i0b: usize,
    j0b: usize,
    bs: usize,
) {
    for j in 0..bs {
        for k in 0..j {
            let ukj = a[(j0u + j) * n + i0u + k];
            if ukj == 0.0 {
                continue;
            }
            for i in 0..bs {
                let xik = a[(j0b + k) * n + i0b + i];
                a[(j0b + j) * n + i0b + i] -= xik * ukj;
            }
        }
        let ujj = a[(j0u + j) * n + i0u + j];
        assert!(ujj.abs() > 1e-300, "singular U in dtrsm");
        for i in 0..bs {
            a[(j0b + j) * n + i0b + i] /= ujj;
        }
    }
}

/// `y += alpha * x` (BLAS1).
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product (BLAS1).
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_major(rows: &[&[f64]]) -> (Vec<f64>, usize) {
        let n = rows.len();
        let mut a = vec![0.0; n * n];
        for (i, r) in rows.iter().enumerate() {
            for (j, v) in r.iter().enumerate() {
                a[j * n + i] = *v;
            }
        }
        (a, n)
    }

    #[test]
    fn gemm_small_known_answer() {
        // C = I2, A = [[1,2],[3,4]], B = [[1,0],[0,1]] => C -= A.
        let (mut m, n) = col_major(&[
            &[1.0, 2.0, 1.0, 0.0, 1.0, 0.0],
            &[3.0, 4.0, 0.0, 1.0, 0.0, 1.0],
            &[0.0; 6],
            &[0.0; 6],
            &[0.0; 6],
            &[0.0; 6],
        ]);
        // Tiles: A at (0,0), B at (0,2), C at (0,4), bs=2.
        dgemm_block(&mut m, n, 0, 4, 0, 0, 0, 2, 2);
        assert_eq!(m[4 * n], 1.0 - 1.0); // C[0][0]
        assert_eq!(m[5 * n + 1], 1.0 - 4.0); // C[1][1]
        assert_eq!(m[4 * n + 1], -3.0);
        assert_eq!(m[5 * n], -2.0);
    }

    #[test]
    fn getrf_then_reconstruct() {
        let (orig, n) = col_major(&[&[4.0, 1.0, 2.0], &[1.0, 5.0, 1.0], &[2.0, 1.0, 6.0]]);
        let mut f = orig.clone();
        dgetrf_nopiv(&mut f, n, 0, 0, n);
        let resid = crate::matrix::SimMatrix::lu_residual(&orig, &f, n);
        assert!(resid < 1e-12, "residual {resid}");
    }

    #[test]
    fn trsm_lower_solves() {
        // L = [[1,0],[2,1]] (unit lower), B = [[5],[12]] -> X = [[5],[2]].
        let n = 4;
        let mut a = vec![0.0; n * n];
        a[0] = 1.0;
        a[1] = 2.0;
        a[n + 1] = 1.0;
        // B tile at (0, 2), bs = 2 with second column zero.
        a[2 * n] = 5.0;
        a[2 * n + 1] = 12.0;
        dtrsm_lower_unit(&mut a, n, 0, 0, 0, 2, 2);
        assert_eq!(a[2 * n], 5.0);
        assert_eq!(a[2 * n + 1], 2.0);
    }

    #[test]
    fn trsm_upper_solves() {
        // U = [[2,1],[0,4]], B = [[2, 5]] (1 row padded to bs=2) ->
        // X*U = B => X = [[1, 1]].
        let n = 4;
        let mut a = vec![0.0; n * n];
        a[0] = 2.0;
        a[n] = 1.0;
        a[n + 1] = 4.0;
        a[2 * n] = 2.0;
        a[3 * n] = 5.0;
        dtrsm_upper(&mut a, n, 0, 0, 0, 2, 2);
        assert!((a[2 * n] - 1.0).abs() < 1e-12);
        assert!((a[3 * n] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blocked_equals_unblocked_lu() {
        // 6x6 diag-dominant matrix, bs=2 blocked factorization using the
        // tile kernels must equal the unblocked reference.
        let n = 6;
        let bs = 2;
        let nb = n / bs;
        let mut orig = vec![0.0; n * n];
        let mut s = 12345u64;
        for v in orig.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        for i in 0..n {
            orig[i * n + i] += 4.0;
        }
        let mut blocked = orig.clone();
        for k in 0..nb {
            dgetrf_nopiv(&mut blocked, n, k * bs, k * bs, bs);
            for i in (k + 1)..nb {
                dtrsm_upper(&mut blocked, n, k * bs, k * bs, i * bs, k * bs, bs);
                dtrsm_lower_unit(&mut blocked, n, k * bs, k * bs, k * bs, i * bs, bs);
            }
            for i in (k + 1)..nb {
                for j in (k + 1)..nb {
                    dgemm_block(
                        &mut blocked,
                        n,
                        i * bs,
                        j * bs,
                        i * bs,
                        k * bs,
                        k * bs,
                        j * bs,
                        bs,
                    );
                }
            }
        }
        let mut reference = orig.clone();
        dgetrf_nopiv(&mut reference, n, 0, 0, n);
        for (b, r) in blocked.iter().zip(&reference) {
            assert!((b - r).abs() < 1e-10, "blocked {b} vs reference {r}");
        }
    }

    #[test]
    fn daxpy_and_ddot() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        assert_eq!(ddot(&x, &y), 12.0 + 48.0 + 108.0);
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn getrf_rejects_singular() {
        let mut a = vec![0.0; 4];
        dgetrf_nopiv(&mut a, 2, 0, 0, 2);
    }
}
