//! An iterative PDE solver with a partitioning change — the scenario of
//! the paper's reference \[8\] (Löf & Holmgren, *affinity-on-next-touch:
//! increasing the performance of an industrial PDE solver on a cc-NUMA
//! system*) that motivated next-touch in the first place.
//!
//! The grid is assembled under one domain decomposition (thread `t` owns
//! column strip `t`), so first-touch places each strip on its assembler's
//! node. The solver then runs Jacobi sweeps under a *different*
//! decomposition (ownership rotated half way around the team — a
//! rebalancing), so without migration every solver thread works against
//! another node's memory for the whole run. A next-touch hook between
//! the phases lets the strips chase their new owners.
//!
//! In real-data mode the parallel Jacobi result is compared bit-for-bit
//! against a sequential reference (Jacobi reads only the old grid, so
//! parallel and sequential orders agree exactly).

use crate::matrix::DataMode;
use numa_machine::{Machine, MemAccessKind, Op, RunResult};
use numa_rt::{Buffer, MigrationStrategy, Schedule, Team, WorkPlan};
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of one solver run.
#[derive(Debug, Clone)]
pub struct PdeConfig {
    /// Grid dimension (`n x n` doubles). Must be a multiple of `threads`.
    pub n: u64,
    /// Jacobi sweeps in the solve phase.
    pub sweeps: u32,
    /// Worker threads (one strip per thread).
    pub threads: usize,
    /// Whether data follows the re-partitioning.
    pub strategy: MigrationStrategy,
    /// Real numerics or phantom.
    pub mode: DataMode,
}

impl PdeConfig {
    /// A small validated configuration.
    pub fn small() -> PdeConfig {
        PdeConfig {
            n: 256,
            sweeps: 4,
            threads: 16,
            strategy: MigrationStrategy::KernelNextTouch,
            mode: DataMode::Real,
        }
    }

    /// A phantom configuration for timing comparisons.
    pub fn timing(n: u64, strategy: MigrationStrategy) -> PdeConfig {
        PdeConfig {
            n,
            sweeps: 8,
            threads: 16,
            strategy,
            mode: DataMode::Phantom,
        }
    }
}

/// Outcome of one solver run.
pub struct PdeResult {
    /// The engine result of the solve phase (assembly is untimed setup).
    pub run: RunResult,
    /// Final grid (real mode only).
    pub grid: Option<Vec<f64>>,
}

/// One Jacobi sweep over rows `0..n`, columns `[c0, c1)`, reading `src`
/// and writing `dst` (column-major, Dirichlet boundaries kept).
fn jacobi_strip(src: &[f64], dst: &mut [f64], n: usize, c0: usize, c1: usize) {
    for j in c0..c1 {
        for i in 0..n {
            let idx = j * n + i;
            if i == 0 || i == n - 1 || j == 0 || j == n - 1 {
                dst[idx] = src[idx];
            } else {
                dst[idx] = 0.25 * (src[idx - 1] + src[idx + 1] + src[idx - n] + src[idx + n]);
            }
        }
    }
}

/// Sequential reference for the validation oracle.
pub fn jacobi_reference(initial: &[f64], n: usize, sweeps: u32) -> Vec<f64> {
    let mut a = initial.to_vec();
    let mut b = vec![0.0; n * n];
    for _ in 0..sweeps {
        jacobi_strip(&a, &mut b, n, 0, n);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Deterministic initial condition: zero interior, hot left boundary.
pub fn initial_grid(n: usize) -> Vec<f64> {
    let mut g = vec![0.0; n * n];
    for cell in g.iter_mut().take(n) {
        *cell = 100.0; // column 0
    }
    g
}

/// Run the solver on `machine` per `cfg`.
pub fn run_pde(machine: &mut Machine, cfg: &PdeConfig) -> PdeResult {
    assert!(
        (cfg.n as usize).is_multiple_of(cfg.threads),
        "n must divide evenly into thread strips"
    );
    let n = cfg.n;
    let strip_cols = n / cfg.threads as u64;
    let bytes = n * n * 8;

    let u = Buffer::alloc(machine, bytes);
    let v = Buffer::alloc(machine, bytes);

    // Host data (two grids, ping-pong).
    let grids = match cfg.mode {
        DataMode::Real => Some(Rc::new(RefCell::new((
            initial_grid(n as usize),
            vec![0.0f64; (n * n) as usize],
        )))),
        DataMode::Phantom => None,
    };

    // ---------------------------------------------------------- assembly
    // Thread t first-touches column strip t of both grids: first-touch
    // places each strip on the assembler's node.
    let team = Team::all_cores(machine).take(cfg.threads);
    {
        let mut plan = WorkPlan::new();
        plan.each_thread(move |tid| {
            let off = tid as u64 * strip_cols * n * 8;
            let len = strip_cols * n * 8;
            vec![
                Op::Access {
                    addr: u.addr + off,
                    bytes: len,
                    traffic: len,
                    write: true,
                    kind: MemAccessKind::Stream,
                },
                Op::Access {
                    addr: v.addr + off,
                    bytes: len,
                    traffic: len,
                    write: true,
                    kind: MemAccessKind::Stream,
                },
            ]
        });
        team.run(machine, plan);
        // Assembly is setup: clear its contention and cache footprint so
        // the timed solve starts clean.
        machine.reset_contention();
        machine.flush_caches();
    }

    // ------------------------------------------------------------- solve
    // Re-partitioned ownership: solver thread t owns the strip assembled
    // by thread (t + T/2) % T.
    let rotate = cfg.threads / 2;
    let own_strip = move |tid: usize, t: usize| (tid + rotate) % t;

    let mut plan = WorkPlan::new();
    if cfg.strategy == MigrationStrategy::KernelNextTouch {
        let (u2, v2) = (u, v);
        plan.single(move || {
            vec![
                Op::MadviseNextTouch {
                    range: u2.page_range(),
                },
                Op::MadviseNextTouch {
                    range: v2.page_range(),
                },
            ]
        });
    }
    for sweep in 0..cfg.sweeps {
        let grids2 = grids.clone();
        let threads = cfg.threads;
        plan.parallel_for(cfg.threads, Schedule::Static, move |tid| {
            let strip = own_strip(tid, threads) as u64;
            let c0 = strip * strip_cols;
            // Real math: sweep this strip from the current src grid.
            if let Some(g) = &grids2 {
                let (ref mut a, ref mut b) = *g.borrow_mut();
                let (src, dst) = if sweep % 2 == 0 { (&*a, b) } else { (&*b, a) };
                jacobi_strip(
                    src,
                    dst,
                    n as usize,
                    c0 as usize,
                    (c0 + strip_cols) as usize,
                );
            }
            let (src, dst) = if sweep % 2 == 0 { (u, v) } else { (v, u) };
            let off = c0 * n * 8;
            let len = strip_cols * n * 8;
            // 5-point stencil: ~5 reads + 1 write per point, but the
            // rereads hit cache; charge 2 passes of the strip plus one
            // halo column each side.
            vec![
                Op::Access {
                    addr: src.addr + off.saturating_sub(n * 8),
                    bytes: (len + 2 * n * 8).min(src.len - off.saturating_sub(n * 8)),
                    traffic: len,
                    write: false,
                    kind: MemAccessKind::Blocked,
                },
                Op::Access {
                    addr: dst.addr + off,
                    bytes: len,
                    traffic: len,
                    write: true,
                    kind: MemAccessKind::Blocked,
                },
                Op::Compute {
                    flops: 4 * strip_cols * n,
                    efficiency: 0.6,
                },
            ]
        });
    }
    let run = team.run(machine, plan);

    let grid = grids.map(|g| {
        let (a, b) = g.replace((Vec::new(), Vec::new()));
        if cfg.sweeps.is_multiple_of(2) {
            a
        } else {
            b
        }
    });
    PdeResult { run, grid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_rt::setup::residency_histogram;

    #[test]
    fn parallel_jacobi_matches_sequential_reference() {
        let mut m = Machine::opteron_4p();
        let cfg = PdeConfig::small();
        let r = run_pde(&mut m, &cfg);
        let got = r.grid.unwrap();
        let want = jacobi_reference(&initial_grid(cfg.n as usize), cfg.n as usize, cfg.sweeps);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                g, w,
                "Jacobi is order-independent: results must be identical"
            );
        }
        // Heat actually diffused off the boundary.
        let interior_heat: f64 = got.iter().skip(cfg.n as usize).take(cfg.n as usize).sum();
        assert!(interior_heat > 0.0);
    }

    #[test]
    fn next_touch_beats_static_after_repartitioning() {
        let time = |strategy| {
            let mut m = Machine::opteron_4p();
            run_pde(&mut m, &PdeConfig::timing(2048, strategy))
                .run
                .makespan
        };
        let stat = time(MigrationStrategy::Static);
        let nt = time(MigrationStrategy::KernelNextTouch);
        assert!(
            nt < stat,
            "next-touch ({nt}) must beat static ({stat}) after the partition change"
        );
    }

    #[test]
    fn strips_follow_their_new_owners() {
        let mut m = Machine::opteron_4p();
        let cfg = PdeConfig {
            n: 1024,
            sweeps: 2,
            threads: 16,
            strategy: MigrationStrategy::KernelNextTouch,
            mode: DataMode::Phantom,
        };
        run_pde(&mut m, &cfg);
        // After the run, data must be spread across all nodes (it started
        // spread by assembler, migrated to the rotated owners — both are
        // spread, but migration must not have collapsed it to one node).
        let total_pages = 2 * cfg.n * cfg.n * 8 / numa_vm::PAGE_SIZE;
        for node in m.topology().node_ids() {
            let live = m.frames.live_on(node);
            assert!(
                live >= total_pages / 8,
                "{node} holds only {live} of {total_pages} pages"
            );
        }
    }

    #[test]
    fn sequential_reference_conserves_boundary() {
        let n = 32;
        let out = jacobi_reference(&initial_grid(n), n, 10);
        for i in 0..n {
            assert_eq!(out[i], 100.0, "left boundary fixed");
            assert_eq!(out[(n - 1) * n + i], 0.0, "right boundary fixed");
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_partition_rejected() {
        let mut m = Machine::opteron_4p();
        let cfg = PdeConfig {
            n: 100,
            ..PdeConfig::small()
        };
        run_pde(&mut m, &cfg);
    }

    #[test]
    fn assembly_places_by_assembler() {
        let mut m = Machine::opteron_4p();
        let cfg = PdeConfig {
            n: 1024,
            sweeps: 0,
            threads: 16,
            strategy: MigrationStrategy::Static,
            mode: DataMode::Phantom,
        };
        run_pde(&mut m, &cfg);
        // Column strip 0 was assembled by thread 0 (node 0); strip 15 by
        // thread 15 (node 3).
        let u_histogram_first = {
            let b = Buffer {
                addr: m.space.vmas().next().unwrap().range.start_addr(),
                len: 64 * 1024 * 8,
            };
            residency_histogram(&m, &b)
        };
        assert!(u_histogram_first[0] > 0);
    }
}
