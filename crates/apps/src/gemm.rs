//! The 16 independent BLAS3 multiplications of Figure 8.
//!
//! One thread per core, each with its own `A`, `B`, `C` (size `n x n`
//! doubles). All matrices are initialised by the main thread, so under
//! *static allocation* everything sits on node 0 and 12 of the 16 threads
//! compute against remote memory across shared HyperTransport links. The
//! next-touch variants redistribute each thread's matrices to its own node
//! on first touch. The paper's crossover: migration starts paying off at
//! `n = 512` (working set beyond the 2 MB L3).

use crate::matrix::DataMode;
use crate::model;
use numa_machine::{Machine, MemAccessKind, Op, RunResult};
use numa_rt::{setup, Buffer, MigrationStrategy, Team, UserNextTouch, WorkPlan};
use numa_topology::NodeId;

/// Parameters of one independent-GEMM run.
#[derive(Debug, Clone)]
pub struct IndepGemmConfig {
    /// Per-thread matrix dimension.
    pub n: u64,
    /// Number of threads (paper: 16).
    pub threads: usize,
    /// Migration strategy applied before each thread's compute.
    pub strategy: MigrationStrategy,
    /// Real math or phantom.
    pub mode: DataMode,
}

impl IndepGemmConfig {
    /// The paper's configuration at matrix size `n` for one strategy.
    pub fn paper(n: u64, strategy: MigrationStrategy) -> Self {
        IndepGemmConfig {
            n,
            threads: 16,
            strategy,
            mode: DataMode::Phantom,
        }
    }
}

/// Per-thread matrices, exposed for tests.
pub struct GemmBuffers {
    /// `A`, `B`, `C` per thread.
    pub abc: Vec<[Buffer; 3]>,
}

/// Run the experiment; returns the engine result and the buffers.
pub fn run_indep_gemm(machine: &mut Machine, cfg: &IndepGemmConfig) -> (RunResult, GemmBuffers) {
    let bytes = cfg.n * cfg.n * 8;
    let mut abc = Vec::with_capacity(cfg.threads);
    for _ in 0..cfg.threads {
        let a = Buffer::alloc(machine, bytes);
        let b = Buffer::alloc(machine, bytes);
        let c = Buffer::alloc(machine, bytes);
        // The main thread initialises every matrix: first-touch places
        // them all on node 0 (the static baseline's handicap).
        setup::populate_on_node(machine, &a, NodeId(0));
        setup::populate_on_node(machine, &b, NodeId(0));
        setup::populate_on_node(machine, &c, NodeId(0));
        abc.push([a, b, c]);
    }

    let user_nt = UserNextTouch::new();
    if cfg.strategy == MigrationStrategy::UserNextTouch {
        machine.set_segv_handler(user_nt.handler());
    }

    let team = Team::all_cores(machine).take(cfg.threads);
    let topo = machine.topology().clone();
    let cores = team.cores.clone();

    let mut plan = WorkPlan::new();

    // Phase 1: apply the strategy to each thread's own matrices.
    {
        let abc2: Vec<[Buffer; 3]> = abc.clone();
        let strategy = cfg.strategy;
        let user_nt2 = user_nt.clone();
        let cores2 = cores.clone();
        plan.each_thread(move |tid| {
            let mine = &abc2[tid];
            match strategy {
                MigrationStrategy::Static => Vec::new(),
                MigrationStrategy::Sync => {
                    let dest = topo.node_of_core(cores2[tid]);
                    mine.iter()
                        .flat_map(|b| MigrationStrategy::Sync.ops(b, Some(dest)))
                        .collect()
                }
                MigrationStrategy::KernelNextTouch => mine
                    .iter()
                    .flat_map(|b| MigrationStrategy::KernelNextTouch.ops(b, None))
                    .collect(),
                MigrationStrategy::UserNextTouch => user_nt2.mark_regions_ops(mine),
            }
        });
    }

    // Phase 2: each thread multiplies its own matrices.
    {
        let abc2: Vec<[Buffer; 3]> = abc.clone();
        let n = cfg.n;
        plan.each_thread(move |tid| {
            let [a, b, c] = &abc2[tid];
            let flops = model::gemm_flops(n);
            let traffic = model::gemm_traffic(n);
            vec![
                Op::Access {
                    addr: a.addr,
                    bytes: a.len,
                    traffic: traffic * 2 / 5,
                    write: false,
                    kind: MemAccessKind::Blocked,
                },
                Op::Access {
                    addr: b.addr,
                    bytes: b.len,
                    traffic: traffic * 2 / 5,
                    write: false,
                    kind: MemAccessKind::Blocked,
                },
                Op::Access {
                    addr: c.addr,
                    bytes: c.len,
                    traffic: traffic / 5,
                    write: true,
                    kind: MemAccessKind::Blocked,
                },
                Op::Compute {
                    flops,
                    efficiency: model::BLAS3_EFFICIENCY,
                },
            ]
        });
    }

    let result = team.run(machine, plan);
    if cfg.strategy == MigrationStrategy::UserNextTouch {
        machine.clear_segv_handler();
    }
    (result, GemmBuffers { abc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_rt::setup::residency_histogram;

    #[test]
    fn static_leaves_data_on_node0() {
        let mut m = Machine::opteron_4p();
        let cfg = IndepGemmConfig {
            n: 64,
            threads: 8,
            strategy: MigrationStrategy::Static,
            mode: DataMode::Phantom,
        };
        let (_, bufs) = run_indep_gemm(&mut m, &cfg);
        for abc in &bufs.abc {
            for b in abc {
                let hist = residency_histogram(&m, b);
                assert_eq!(hist[0], b.pages(), "static data must stay on node 0");
            }
        }
    }

    #[test]
    fn kernel_next_touch_moves_data_to_each_thread() {
        let mut m = Machine::opteron_4p();
        let cfg = IndepGemmConfig {
            n: 64,
            threads: 16,
            strategy: MigrationStrategy::KernelNextTouch,
            mode: DataMode::Phantom,
        };
        let (_, bufs) = run_indep_gemm(&mut m, &cfg);
        // Thread 12 runs on core 12 = node 3: its matrices must be there.
        let node = m.node_of_core(numa_topology::CoreId(12));
        for b in &bufs.abc[12] {
            let hist = residency_histogram(&m, b);
            assert_eq!(
                hist[node.index()],
                b.pages(),
                "thread 12's data must follow it to {node}"
            );
        }
    }

    #[test]
    fn next_touch_beats_static_for_large_matrices() {
        // The Figure-8 headline: beyond the cache, migration wins.
        let time = |strategy| {
            let mut m = Machine::opteron_4p();
            let cfg = IndepGemmConfig::paper(512, strategy);
            run_indep_gemm(&mut m, &cfg).0.makespan
        };
        let stat = time(MigrationStrategy::Static);
        let nt = time(MigrationStrategy::KernelNextTouch);
        assert!(
            nt < stat,
            "kernel NT ({nt}) must beat static ({stat}) at n=512"
        );
    }

    #[test]
    fn static_wins_for_tiny_matrices() {
        // Below the cache the data is read once into L3 and the migration
        // overhead cannot amortise.
        let time = |strategy| {
            let mut m = Machine::opteron_4p();
            let cfg = IndepGemmConfig::paper(128, strategy);
            run_indep_gemm(&mut m, &cfg).0.makespan
        };
        let stat = time(MigrationStrategy::Static);
        let nt = time(MigrationStrategy::KernelNextTouch);
        assert!(
            stat <= nt,
            "static ({stat}) must not lose at n=128 (nt {nt})"
        );
    }
}
