//! Column-major matrices in simulated memory.
//!
//! The paper's LU stores the matrix in plain column-major order and tiles
//! it *logically* into `bs x bs` blocks; the physical layout is what makes
//! the 512-block-size threshold appear: a block's column segment is
//! `bs * 8` bytes, so only for `bs >= 512` does a segment fill whole 4 kB
//! pages and migrate independently of its vertical neighbours (§4.5).
//!
//! [`SimMatrix`] couples the simulated allocation (a [`Buffer`]) with an
//! optional host-side `Vec<f64>` carrying real numerics so correctness can
//! be validated with actual math while large sweeps run "phantom"
//! (access-pattern only).

use crate::blas;
use numa_machine::{Machine, MemAccessKind, Op};
use numa_rt::Buffer;
use numa_vm::VirtAddr;
use std::cell::RefCell;
use std::rc::Rc;

/// Whether a matrix carries real data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Host-side `f64` storage; kernels do the real math.
    Real,
    /// Access patterns only (for large parameter sweeps).
    Phantom,
}

/// An `n x n` column-major matrix of `f64` in simulated memory.
#[derive(Clone)]
pub struct SimMatrix {
    /// The simulated allocation backing the matrix.
    pub buffer: Buffer,
    /// Dimension.
    pub n: u64,
    /// Host-side data in the same column-major layout (None in phantom
    /// mode). Shared so op-generating closures can do math in place.
    pub data: Option<Rc<RefCell<Vec<f64>>>>,
}

impl SimMatrix {
    /// Allocate an `n x n` matrix interleaved across all nodes (the
    /// paper's static policy for LU, §4.5).
    pub fn alloc_interleaved(machine: &mut Machine, n: u64, mode: DataMode) -> SimMatrix {
        let buffer = Buffer::alloc_interleaved(machine, n * n * 8);
        SimMatrix::from_buffer(buffer, n, mode)
    }

    /// Allocate with first-touch placement.
    pub fn alloc_first_touch(machine: &mut Machine, n: u64, mode: DataMode) -> SimMatrix {
        let buffer = Buffer::alloc(machine, n * n * 8);
        SimMatrix::from_buffer(buffer, n, mode)
    }

    fn from_buffer(buffer: Buffer, n: u64, mode: DataMode) -> SimMatrix {
        let data = match mode {
            DataMode::Real => Some(Rc::new(RefCell::new(vec![0.0; (n * n) as usize]))),
            DataMode::Phantom => None,
        };
        SimMatrix { buffer, n, data }
    }

    /// Fill the host data (if any) with a deterministic, well-conditioned,
    /// diagonally dominant matrix (safe for pivot-free LU).
    pub fn fill_diag_dominant(&self, seed: u64) {
        let Some(data) = &self.data else {
            return;
        };
        let n = self.n as usize;
        let mut d = data.borrow_mut();
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for j in 0..n {
            for i in 0..n {
                d[j * n + i] = next() / n as f64;
            }
        }
        for i in 0..n {
            d[i * n + i] += 2.0;
        }
    }

    /// Byte offset of element `(i, j)`.
    pub fn elem_offset(&self, i: u64, j: u64) -> u64 {
        (j * self.n + i) * 8
    }

    /// Simulated address of element `(i, j)`.
    pub fn elem_addr(&self, i: u64, j: u64) -> VirtAddr {
        self.buffer.addr + self.elem_offset(i, j)
    }

    /// A strided access op covering logical block `(bi, bj)` of size
    /// `bs x bs`: `bs` segments of `bs * 8` bytes, one per column, `n * 8`
    /// bytes apart.
    pub fn block_access(&self, bi: u64, bj: u64, bs: u64, traffic: u64, write: bool) -> Op {
        Op::AccessStrided {
            base: self.elem_addr(bi * bs, bj * bs),
            seg_bytes: bs * 8,
            stride: self.n * 8,
            count: bs,
            traffic,
            write,
            kind: MemAccessKind::Blocked,
        }
    }

    /// The contiguous byte range spanning columns `[j0, j1)` — used for
    /// the per-iteration next-touch hook over the trailing submatrix.
    pub fn columns_buffer(&self, j0: u64, j1: u64) -> Buffer {
        assert!(j0 <= j1 && j1 <= self.n);
        self.buffer.slice(j0 * self.n * 8, (j1 - j0) * self.n * 8)
    }

    /// Run real math on block `(bi, bj)` via `f`, which receives the full
    /// column-major storage, the dimension, and the block's element
    /// origin. No-op in phantom mode.
    pub fn with_data<F: FnOnce(&mut [f64], usize)>(&self, f: F) {
        if let Some(data) = &self.data {
            let n = self.n as usize;
            f(&mut data.borrow_mut(), n);
        }
    }

    /// Clone of the host data (test oracles). Panics in phantom mode.
    pub fn snapshot(&self) -> Vec<f64> {
        self.data
            .as_ref()
            .expect("snapshot requires DataMode::Real")
            .borrow()
            .clone()
    }

    /// Verify `self ~= L * U` where L/U are packed in `factored` (unit
    /// lower / upper), against `original`. Returns the max abs error.
    pub fn lu_residual(original: &[f64], factored: &[f64], n: usize) -> f64 {
        let mut worst = 0.0f64;
        for j in 0..n {
            for i in 0..n {
                // (L*U)[i][j] = sum_k L[i][k] U[k][j], L unit-diagonal.
                let kmax = i.min(j);
                let mut acc = 0.0;
                for k in 0..kmax {
                    acc += factored[k * n + i] * factored[j * n + k];
                }
                // k == i term (L[i][i] = 1) when i <= j;
                // k == j term (U[j][j]) folded when j < i.
                if i <= j {
                    acc += factored[j * n + i];
                } else {
                    acc += factored[j * n + i] * factored[j * n + j];
                }
                let err = (acc - original[j * n + i]).abs();
                worst = worst.max(err);
            }
        }
        worst
    }

    /// Factorize the host data in place with the reference (unblocked)
    /// algorithm — the oracle the blocked run is checked against.
    pub fn reference_lu(&self) {
        self.with_data(|d, n| blas::dgetrf_nopiv(d, n, 0, 0, n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_vm::PAGE_SIZE;

    #[test]
    fn layout_math() {
        let mut m = Machine::two_node();
        let a = SimMatrix::alloc_first_touch(&mut m, 512, DataMode::Phantom);
        assert_eq!(a.elem_offset(0, 0), 0);
        assert_eq!(a.elem_offset(1, 0), 8);
        assert_eq!(a.elem_offset(0, 1), 512 * 8);
        // One 512-double column is exactly one page.
        assert_eq!(a.elem_offset(0, 1) % PAGE_SIZE, 0);
    }

    #[test]
    fn block_access_shape() {
        let mut m = Machine::two_node();
        let a = SimMatrix::alloc_first_touch(&mut m, 256, DataMode::Phantom);
        match a.block_access(1, 2, 64, 1000, false) {
            Op::AccessStrided {
                base,
                seg_bytes,
                stride,
                count,
                ..
            } => {
                assert_eq!(base, a.elem_addr(64, 128));
                assert_eq!(seg_bytes, 64 * 8);
                assert_eq!(stride, 256 * 8);
                assert_eq!(count, 64);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn diag_dominant_fill_is_deterministic_and_dominant() {
        let mut m = Machine::two_node();
        let a = SimMatrix::alloc_first_touch(&mut m, 16, DataMode::Real);
        a.fill_diag_dominant(7);
        let b = SimMatrix::alloc_first_touch(&mut m, 16, DataMode::Real);
        b.fill_diag_dominant(7);
        assert_eq!(a.snapshot(), b.snapshot());
        let d = a.snapshot();
        for i in 0..16usize {
            let diag = d[i * 16 + i].abs();
            let off: f64 = (0..16usize)
                .filter(|k| *k != i)
                .map(|k| d[k * 16 + i].abs())
                .sum();
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn columns_buffer_covers_trailing() {
        let mut m = Machine::two_node();
        let a = SimMatrix::alloc_first_touch(&mut m, 64, DataMode::Phantom);
        let tail = a.columns_buffer(32, 64);
        assert_eq!(tail.addr, a.elem_addr(0, 32));
        assert_eq!(tail.len, 32 * 64 * 8);
    }

    #[test]
    fn phantom_mode_has_no_data() {
        let mut m = Machine::two_node();
        let a = SimMatrix::alloc_first_touch(&mut m, 8, DataMode::Phantom);
        assert!(a.data.is_none());
        let mut called = false;
        a.with_data(|_, _| called = true);
        assert!(!called);
    }
}
