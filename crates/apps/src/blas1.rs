//! The BLAS1 experiment (§4.5, prose): "the performance of BLAS1
//! operations (vector operations) never improves thanks to memory
//! migration".
//!
//! Each thread repeatedly runs `y += alpha * x` over its own pair of
//! vectors that initially live on node 0. A vector operation makes only a
//! single pass over its data, so the one-time migration cost (a full
//! copy at kernel-copy bandwidth) can never be repaid by the per-pass
//! remote-access saving — unlike BLAS3, whose traffic exceeds its
//! footprint by orders of magnitude.

use crate::model;
use numa_machine::{Machine, MemAccessKind, Op, RunResult};
use numa_rt::{setup, Buffer, MigrationStrategy, Team, WorkPlan};
use numa_topology::NodeId;

/// Parameters of one BLAS1 run.
#[derive(Debug, Clone)]
pub struct Blas1Config {
    /// Elements per vector.
    pub elements: u64,
    /// Number of threads.
    pub threads: usize,
    /// Passes of daxpy over the vectors.
    pub passes: u32,
    /// Migration strategy before the compute.
    pub strategy: MigrationStrategy,
}

impl Blas1Config {
    /// The paper-style configuration.
    pub fn paper(elements: u64, strategy: MigrationStrategy) -> Self {
        Blas1Config {
            elements,
            threads: 16,
            passes: 1,
            strategy,
        }
    }
}

/// Run the experiment; returns the engine result.
pub fn run_daxpy(machine: &mut Machine, cfg: &Blas1Config) -> RunResult {
    let bytes = cfg.elements * 8;
    let mut xy = Vec::with_capacity(cfg.threads);
    for _ in 0..cfg.threads {
        let x = Buffer::alloc(machine, bytes);
        let y = Buffer::alloc(machine, bytes);
        setup::populate_on_node(machine, &x, NodeId(0));
        setup::populate_on_node(machine, &y, NodeId(0));
        xy.push([x, y]);
    }

    let team = Team::all_cores(machine).take(cfg.threads);
    let topo = machine.topology().clone();
    let cores = team.cores.clone();

    let mut plan = WorkPlan::new();
    {
        let xy2 = xy.clone();
        let strategy = cfg.strategy;
        plan.each_thread(move |tid| match strategy {
            MigrationStrategy::Static => Vec::new(),
            MigrationStrategy::Sync => {
                let dest = topo.node_of_core(cores[tid]);
                xy2[tid]
                    .iter()
                    .flat_map(|b| MigrationStrategy::Sync.ops(b, Some(dest)))
                    .collect()
            }
            _ => xy2[tid]
                .iter()
                .flat_map(|b| MigrationStrategy::KernelNextTouch.ops(b, None))
                .collect(),
        });
    }
    {
        let xy2 = xy.clone();
        let passes = cfg.passes;
        let elements = cfg.elements;
        plan.each_thread(move |tid| {
            let [x, y] = &xy2[tid];
            let mut ops = Vec::with_capacity(passes as usize * 3);
            for _ in 0..passes {
                ops.push(Op::Access {
                    addr: x.addr,
                    bytes: x.len,
                    traffic: x.len,
                    write: false,
                    kind: MemAccessKind::Stream,
                });
                ops.push(Op::Access {
                    addr: y.addr,
                    bytes: y.len,
                    traffic: 2 * y.len, // read + write-back
                    write: true,
                    kind: MemAccessKind::Stream,
                });
                ops.push(Op::Compute {
                    flops: 2 * elements,
                    efficiency: model::BLAS3_EFFICIENCY,
                });
            }
            ops
        });
    }

    team.run(machine, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's negative result, reproduced: migration never helps the
    /// vector kernel.
    #[test]
    fn migration_never_improves_daxpy() {
        for elements in [1u64 << 14, 1 << 17] {
            let time = |strategy| {
                let mut m = Machine::opteron_4p();
                run_daxpy(&mut m, &Blas1Config::paper(elements, strategy)).makespan
            };
            let stat = time(MigrationStrategy::Static);
            let nt = time(MigrationStrategy::KernelNextTouch);
            let sync = time(MigrationStrategy::Sync);
            assert!(
                nt >= stat,
                "NT ({nt}) must not beat static ({stat}) at {elements} elements"
            );
            assert!(
                sync >= stat,
                "sync ({sync}) must not beat static ({stat}) at {elements} elements"
            );
        }
    }

    #[test]
    fn daxpy_scales_with_vector_length() {
        let time = |elements| {
            let mut m = Machine::opteron_4p();
            run_daxpy(
                &mut m,
                &Blas1Config::paper(elements, MigrationStrategy::Static),
            )
            .makespan
            .ns()
        };
        let short = time(1 << 12);
        let long = time(1 << 16);
        assert!(long > short * 4, "long {long} vs short {short}");
    }
}
