//! Property-based tests for the numerics kernels: blocked algorithms
//! agree with their unblocked references for arbitrary well-conditioned
//! inputs and block factorizations.

use numa_apps::blas;
use proptest::prelude::*;

/// Build a random diagonally-dominant column-major matrix.
fn random_dd(n: usize, seed: u64) -> Vec<f64> {
    let mut a = vec![0.0; n * n];
    let mut s = seed | 1;
    for v in a.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *v = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    for i in 0..n {
        a[i * n + i] += n as f64;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Blocked LU (any block size dividing n) equals the unblocked
    /// reference elementwise.
    #[test]
    fn blocked_lu_equals_reference(nb in 1usize..5, bs in 1usize..7, seed in any::<u64>()) {
        let n = nb * bs;
        let orig = random_dd(n, seed);
        let mut reference = orig.clone();
        blas::dgetrf_nopiv(&mut reference, n, 0, 0, n);

        let mut blocked = orig.clone();
        for k in 0..nb {
            blas::dgetrf_nopiv(&mut blocked, n, k * bs, k * bs, bs);
            for i in (k + 1)..nb {
                blas::dtrsm_upper(&mut blocked, n, k * bs, k * bs, i * bs, k * bs, bs);
                blas::dtrsm_lower_unit(&mut blocked, n, k * bs, k * bs, k * bs, i * bs, bs);
            }
            for i in (k + 1)..nb {
                for j in (k + 1)..nb {
                    blas::dgemm_block(
                        &mut blocked, n, i * bs, j * bs, i * bs, k * bs, k * bs, j * bs, bs,
                    );
                }
            }
        }
        for (b, r) in blocked.iter().zip(&reference) {
            prop_assert!((b - r).abs() < 1e-8 * n as f64, "blocked {b} vs ref {r}");
        }
    }

    /// L*U reconstructs the original matrix (residual check used by the
    /// LU app) for any size.
    #[test]
    fn lu_reconstructs(n in 1usize..24, seed in any::<u64>()) {
        let orig = random_dd(n, seed);
        let mut f = orig.clone();
        blas::dgetrf_nopiv(&mut f, n, 0, 0, n);
        let resid = numa_apps::matrix::SimMatrix::lu_residual(&orig, &f, n);
        prop_assert!(resid < 1e-8 * n as f64, "residual {resid}");
    }

    /// daxpy then daxpy with the negated alpha is the identity.
    #[test]
    fn daxpy_inverts(
        alpha in -100.0f64..100.0,
        x in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let y0: Vec<f64> = x.iter().map(|v| v * 3.0 + 1.0).collect();
        let mut y = y0.clone();
        blas::daxpy(alpha, &x, &mut y);
        blas::daxpy(-alpha, &x, &mut y);
        for (a, b) in y.iter().zip(&y0) {
            prop_assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
        }
    }

    /// ddot is symmetric and positive on a vector with itself.
    #[test]
    fn ddot_properties(x in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let y: Vec<f64> = x.iter().rev().copied().collect();
        let xy = blas::ddot(&x, &y);
        let yx = blas::ddot(&y, &x);
        prop_assert!((xy - yx).abs() < 1e-9 * xy.abs().max(1.0));
        let xx = blas::ddot(&x, &x);
        prop_assert!(xx >= 0.0);
    }

    /// GEMM distributes over splitting B's columns: updating with B then
    /// the zero matrix equals updating once.
    #[test]
    fn gemm_zero_is_noop(bs in 1usize..6, seed in any::<u64>()) {
        let n = bs * 3;
        let mut m = random_dd(n, seed);
        // Zero tile at (0, bs..): multiply C -= A * 0 must not change C.
        for j in bs..2 * bs {
            for i in 0..bs {
                m[j * n + i] = 0.0;
            }
        }
        let before = m.clone();
        blas::dgemm_block(&mut m, n, 0, 2 * bs, 0, 0, 0, bs, bs);
        for (a, b) in m.iter().zip(&before) {
            prop_assert_eq!(a, b);
        }
    }
}
