//! Cross-crate integration tests for the synchronous migration stack:
//! topology -> vm -> kernel -> machine, exercised through the public API.

use numa_migrate::prelude::*;
use numa_migrate::rt::setup;
use numa_migrate::system::Platform;

/// A full move_pages round trip through the engine: populate, migrate,
/// verify placement, contents and counters.
#[test]
fn move_pages_end_to_end() {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, 64 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));

    let tags_before: Vec<u64> = buf
        .page_range()
        .iter()
        .map(|vpn| {
            let pte = m.space.page_table.get(vpn).unwrap();
            m.frames.get(pte.frame).unwrap().content_tag
        })
        .collect();

    let pages = buf.page_addrs();
    let dest = vec![NodeId(3); pages.len()];
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::MovePages { pages, dest }],
        )],
        &[],
    );

    setup::assert_resident_on(&m, &buf, NodeId(3));
    let tags_after: Vec<u64> = buf
        .page_range()
        .iter()
        .map(|vpn| {
            let pte = m.space.page_table.get(vpn).unwrap();
            m.frames.get(pte.frame).unwrap().content_tag
        })
        .collect();
    assert_eq!(tags_before, tags_after, "contents must survive migration");
    assert_eq!(m.kernel.counters.get(Counter::PagesMovedSyscall), 64);
    assert!(r.makespan.ns() > 160_000, "must pay the syscall base");
    // No frame leaks: one live frame per page.
    assert_eq!(m.frames.live_total(), 64);
}

/// migrate_pages moves the whole address space and leaves other-node pages
/// alone.
#[test]
fn migrate_pages_end_to_end() {
    let mut m = NumaSystem::new().build();
    let a = Buffer::alloc(&mut m, 16 * PAGE_SIZE);
    let b = Buffer::alloc(&mut m, 16 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &a, NodeId(0));
    setup::populate_on_node(&mut m, &b, NodeId(2));

    m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::MigratePages {
                from: vec![NodeId(0)],
                to: vec![NodeId(1)],
            }],
        )],
        &[],
    );
    setup::assert_resident_on(&m, &a, NodeId(1));
    setup::assert_resident_on(&m, &b, NodeId(2));
}

/// The paper's headline fix: quadratic vs patched move_pages at scale.
#[test]
fn unpatched_kernel_is_quadratic_through_public_api() {
    let time = |patched: bool, pages: u64| {
        let mut m = NumaSystem::new()
            .kernel(KernelConfig {
                patched_move_pages: patched,
                ..KernelConfig::default()
            })
            .build();
        let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let addrs = buf.page_addrs();
        let dest = vec![NodeId(1); addrs.len()];
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(0),
                vec![Op::MovePages { pages: addrs, dest }],
            )],
            &[],
        )
        .makespan
        .ns()
    };
    let ratio_small = time(false, 128) as f64 / time(true, 128) as f64;
    let ratio_large = time(false, 4096) as f64 / time(true, 4096) as f64;
    assert!(
        ratio_small < 2.0,
        "small buffers barely affected: {ratio_small}"
    );
    assert!(ratio_large > 4.0, "large buffers collapse: {ratio_large}");
}

/// Concurrent migrations by threads on different nodes interleave rather
/// than serialize end-to-end (the engine's micro-op scheduling).
#[test]
fn concurrent_move_pages_overlap() {
    let solo = {
        let mut m = NumaSystem::new().build();
        let buf = Buffer::alloc(&mut m, 2048 * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let addrs = buf.page_addrs();
        let dest = vec![NodeId(1); addrs.len()];
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(4),
                vec![Op::MovePages { pages: addrs, dest }],
            )],
            &[],
        )
        .makespan
        .ns()
    };
    let duo = {
        let mut m = NumaSystem::new().build();
        let buf = Buffer::alloc(&mut m, 2048 * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let halves = buf.split_pages(2);
        let mk = |b: &Buffer, core| {
            let addrs = b.page_addrs();
            let dest = vec![NodeId(1); addrs.len()];
            ThreadSpec::scripted(core, vec![Op::MovePages { pages: addrs, dest }])
        };
        m.run(
            vec![mk(&halves[0], CoreId(4)), mk(&halves[1], CoreId(5))],
            &[],
        )
        .makespan
        .ns()
    };
    assert!(
        (duo as f64) < solo as f64 * 0.75,
        "two threads must overlap: solo {solo} duo {duo}"
    );
}

/// mbind + first touch places pages per policy on every platform preset.
#[test]
fn policies_work_on_all_platforms() {
    for platform in [Platform::TwoNode, Platform::Opteron4P, Platform::EightNode] {
        let mut m = NumaSystem::new().platform(platform).build();
        let nodes = m.topology().node_count();
        let buf = Buffer::alloc_interleaved(&mut m, 4 * PAGE_SIZE * nodes as u64);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let hist = setup::residency_histogram(&m, &buf);
        assert!(
            hist.iter().all(|c| *c == 4),
            "interleave must spread evenly on {platform:?}: {hist:?}"
        );
    }
}

/// Running out of frames on a bound node surfaces as NoMemory, not a
/// crash or silent misplacement.
#[test]
fn bound_allocation_fails_loudly_when_bank_full() {
    // A tiny machine: shrink node memory via the cost model? Frame
    // capacity follows NodeSpec.memory_bytes, so exhaust a node by
    // allocating its whole bank.
    let mut m = NumaSystem::new().platform(Platform::TwoNode).build();
    let bank_pages = m.topology().node(NodeId(0)).memory_bytes / PAGE_SIZE;
    // Fill node 0 completely.
    let filler = Buffer::alloc_on(&mut m, bank_pages * PAGE_SIZE, NodeId(0));
    setup::populate_on_node(&mut m, &filler, NodeId(0));
    assert_eq!(m.frames.live_on(NodeId(0)), bank_pages);
    // A bound allocation on the full node must fail on fault.
    let extra = Buffer::alloc_on(&mut m, PAGE_SIZE, NodeId(0));
    let r = m.kernel.handle_fault(
        &mut m.space,
        &mut m.frames,
        &mut m.tlb,
        SimTime::ZERO,
        CoreId(0),
        extra.addr,
        true,
        &mut numa_migrate::stats::Breakdown::new(),
    );
    assert!(matches!(r, numa_migrate::kernel::FaultResolution::Fatal(_)));
}
