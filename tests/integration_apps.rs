//! Application-level integration tests: the LU factorization, the
//! independent GEMMs and the AMR workload, exercised end-to-end with
//! numerics validated where real data is carried.

use numa_migrate::apps::gemm::{run_indep_gemm, IndepGemmConfig};
use numa_migrate::apps::lu::{run_lu, LuConfig};
use numa_migrate::apps::matrix::DataMode;
use numa_migrate::prelude::*;

/// Every migration strategy produces the same (correct) factorization —
/// placement policy must never change numerics.
#[test]
fn lu_numerics_invariant_under_strategy() {
    let mut reference: Option<Vec<f64>> = None;
    for strategy in [
        MigrationStrategy::Static,
        MigrationStrategy::KernelNextTouch,
        MigrationStrategy::UserNextTouch,
    ] {
        let mut m = NumaSystem::new().build();
        let cfg = LuConfig {
            n: 128,
            bs: 32,
            threads: 16,
            strategy,
            schedule: Schedule::Dynamic(1),
            mode: DataMode::Real,
            seed: 7,
        };
        let r = run_lu(&mut m, &cfg);
        assert!(
            r.residual.unwrap() < 1e-9,
            "{} residual {:?}",
            strategy.label(),
            r.residual
        );
        // All strategies factor the same matrix: identical flop counts.
        match &reference {
            None => reference = Some(vec![r.stats.breakdown.get(CostComponent::Compute) as f64]),
            Some(prev) => assert_eq!(
                prev[0],
                r.stats.breakdown.get(CostComponent::Compute) as f64,
                "compute time must be strategy-independent"
            ),
        }
    }
}

/// Thread count sweeps complete and more threads never hurt by much on
/// the compute-bound real workload (256x256 with 32-blocks gives an 8x8
/// block grid — enough parallel slack for 16 threads).
#[test]
fn lu_thread_scaling_sane() {
    let time = |threads| {
        let mut m = NumaSystem::new().build();
        let cfg = LuConfig {
            threads,
            ..LuConfig::small(256, 32)
        };
        run_lu(&mut m, &cfg).time.ns()
    };
    let t1 = time(1);
    let t4 = time(4);
    let t16 = time(16);
    assert!(t4 < t1, "4 threads must beat 1 ({t4} vs {t1})");
    assert!(
        t16 <= t4 * 12 / 10,
        "16 threads must not regress much vs 4 ({t16} vs {t4})"
    );
}

/// Table-1 directionality at reduced scale: small blocks lose with
/// next-touch, large page-aligned blocks win.
#[test]
fn table1_shape_reduced() {
    use numa_migrate::experiments::table1;
    let small = table1::run_case(1024, 64);
    let large = table1::run_case(4096, 512);
    assert!(
        small.improvement_percent() < 0.0,
        "bs=64 must lose: {:+.1}%",
        small.improvement_percent()
    );
    assert!(
        large.improvement_percent() > 5.0,
        "bs=512 must win: {:+.1}%",
        large.improvement_percent()
    );
}

/// Figure-8 crossover through the app API.
#[test]
fn gemm_crossover_through_public_api() {
    let time = |n, strategy| {
        let mut m = NumaSystem::new().build();
        run_indep_gemm(&mut m, &IndepGemmConfig::paper(n, strategy))
            .0
            .makespan
            .ns()
    };
    let small_static = time(128, MigrationStrategy::Static);
    let small_nt = time(128, MigrationStrategy::KernelNextTouch);
    let big_static = time(512, MigrationStrategy::Static);
    let big_nt = time(512, MigrationStrategy::KernelNextTouch);
    assert!(small_static <= small_nt, "below the cache static wins");
    assert!(big_nt < big_static, "beyond the cache next-touch wins");
}

/// Sync migration to each thread's node is the clairvoyant baseline; the
/// lazy (next-touch) variant must land in its neighbourhood without
/// needing the destination in advance.
#[test]
fn lazy_matches_clairvoyant_sync_for_gemm() {
    let time = |strategy| {
        let mut m = NumaSystem::new().build();
        run_indep_gemm(&mut m, &IndepGemmConfig::paper(512, strategy))
            .0
            .makespan
            .ns()
    };
    let sync = time(MigrationStrategy::Sync);
    let lazy = time(MigrationStrategy::KernelNextTouch);
    let ratio = lazy as f64 / sync as f64;
    assert!(
        (0.6..1.4).contains(&ratio),
        "lazy should be competitive with clairvoyant sync: {ratio:.2}"
    );
}

/// AMR: determinism plus the next-touch win, through the public API.
#[test]
fn amr_end_to_end() {
    use numa_migrate::apps::amr::{run_amr, AmrConfig};
    let mut m1 = NumaSystem::new().build();
    let mut m2 = NumaSystem::new().build();
    let cfg = AmrConfig::demo(MigrationStrategy::KernelNextTouch);
    let (r1, w1) = run_amr(&mut m1, &cfg);
    let (r2, w2) = run_amr(&mut m2, &cfg);
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(w1, w2);
    assert!(m1.kernel.counters.get(Counter::PagesMovedFault) > 0);
}

/// The paper's §4.5 congestion diagnosis, instrumented: next-touch must
/// reduce cross-link traffic time in the LU run (the data stops crossing
/// HyperTransport once it lives next to its threads).
#[test]
fn next_touch_reduces_link_congestion_in_lu() {
    let link_ns = |strategy| {
        let mut m = NumaSystem::new().build();
        run_lu(
            &mut m,
            &numa_migrate::apps::lu::LuConfig::sweep(2048, 512, strategy),
        );
        m.congestion_report().total_link_ns()
    };
    let static_links = link_ns(MigrationStrategy::Static);
    let nt_links = link_ns(MigrationStrategy::KernelNextTouch);
    // The cut is partial, not total: the migrations themselves cross the
    // links, and the per-iteration re-marking keeps some churn.
    assert!(
        nt_links < static_links * 4 / 5,
        "next-touch must cut link traffic-time: static {static_links}, nt {nt_links}"
    );
}

/// "We do not present the impact of our user-level Next-touch
/// implementation because its overhead makes it unusable for such small
/// granularities" (§4.5) — verified: at bs = 64 the user-space variant is
/// far slower than both the kernel variant and static.
#[test]
fn user_next_touch_unusable_at_small_granularity() {
    let time = |strategy| {
        let mut m = NumaSystem::new().build();
        run_lu(
            &mut m,
            &numa_migrate::apps::lu::LuConfig::sweep(1024, 64, strategy),
        )
        .time
        .ns()
    };
    let stat = time(MigrationStrategy::Static);
    let kernel = time(MigrationStrategy::KernelNextTouch);
    let user = time(MigrationStrategy::UserNextTouch);
    assert!(
        user > kernel * 3 / 2,
        "user NT ({user}) must be much slower than kernel NT ({kernel})"
    );
    assert!(
        user > stat,
        "user NT ({user}) must be slower than static ({stat}) at this granularity"
    );
}
