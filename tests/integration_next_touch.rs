//! Cross-crate integration tests for both next-touch implementations and
//! the lazy-migration idiom, through the public API.

use numa_migrate::prelude::*;
use numa_migrate::rt::setup;

/// Kernel next-touch scatters a shared buffer across the nodes of the
/// threads that touch it — the paper's canonical use (§3.4): "Next-touch
/// usually serves as a way to scatter a single buffer across multiple
/// NUMA nodes when multiple threads start accessing it in an
/// unpredictable manner".
#[test]
fn kernel_next_touch_scatters_by_toucher() {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, 16 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));

    let chunks = buf.split_pages(4);
    // One thread per node; thread 0 marks, everyone touches one chunk.
    let mut specs = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        let mut ops = Vec::new();
        if i == 0 {
            ops.push(Op::MadviseNextTouch {
                range: buf.page_range(),
            });
        }
        ops.push(Op::Barrier(0));
        ops.push(Op::write(chunk.addr, chunk.len, MemAccessKind::Stream));
        let core = m.topology().cores_of_node(NodeId(i as u16))[0];
        specs.push(ThreadSpec::scripted(core, ops));
    }
    m.run(specs, &[4]);

    for (i, chunk) in chunks.iter().enumerate() {
        setup::assert_resident_on(&m, chunk, NodeId(i as u16));
    }
    assert_eq!(m.kernel.counters.get(Counter::PagesMovedFault), 12);
    assert_eq!(m.kernel.counters.get(Counter::PagesAlreadyPlaced), 4);
}

/// User-space next-touch migrates whole regions; pages never touched
/// never migrate (the lazy-migration selling point, §3.4).
#[test]
fn untouched_regions_never_migrate() {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let nt = UserNextTouch::new();
    m.set_segv_handler(nt.handler());

    let halves = buf.split_pages(2);
    let mut ops = nt.mark_regions_ops(&halves);
    // Touch only the first half, from node 1.
    ops.push(Op::read(halves[0].addr, 8, MemAccessKind::Stream));
    let core = m.topology().cores_of_node(NodeId(1))[0];
    m.run(vec![ThreadSpec::scripted(core, ops)], &[]);

    setup::assert_resident_on(&m, &halves[0], NodeId(1));
    setup::assert_resident_on(&m, &halves[1], NodeId(0));
    assert_eq!(nt.pending(), 1, "second region still armed");
    m.clear_segv_handler();
}

/// A marked buffer touched locally clears its flags without copying —
/// "there is no useless migration" (§3.4).
#[test]
fn local_touch_pays_no_copy() {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, 32 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(2));
    let core = m.topology().cores_of_node(NodeId(2))[0];
    let r = m.run(
        vec![ThreadSpec::scripted(
            core,
            vec![
                Op::MadviseNextTouch {
                    range: buf.page_range(),
                },
                Op::write(buf.addr, buf.len, MemAccessKind::Stream),
            ],
        )],
        &[],
    );
    assert_eq!(m.kernel.counters.get(Counter::PagesMovedFault), 0);
    assert_eq!(m.kernel.counters.get(Counter::PagesAlreadyPlaced), 32);
    assert!(
        r.stats.breakdown.get(CostComponent::FaultCopy) == 0,
        "no copy may be charged for local touches"
    );
    setup::assert_resident_on(&m, &buf, NodeId(2));
}

/// Marking is idempotent and re-armable: after migration, re-marking
/// re-enables migration the other way.
#[test]
fn next_touch_can_ping_pong_when_rearmed() {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, 4 * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let core1 = m.topology().cores_of_node(NodeId(1))[0];
    let core3 = m.topology().cores_of_node(NodeId(3))[0];

    let mark = Op::MadviseNextTouch {
        range: buf.page_range(),
    };
    let touch = Op::write(buf.addr, buf.len, MemAccessKind::Stream);
    m.run(
        vec![ThreadSpec::scripted(
            core1,
            vec![mark.clone(), touch.clone()],
        )],
        &[],
    );
    setup::assert_resident_on(&m, &buf, NodeId(1));
    m.run(vec![ThreadSpec::scripted(core3, vec![mark, touch])], &[]);
    setup::assert_resident_on(&m, &buf, NodeId(3));
    assert_eq!(m.kernel.counters.get(Counter::PagesMovedFault), 8);
}

/// The kernel path must beat the user path for the same workload
/// (the paper's ~30 % headline, §4.3/§5).
#[test]
fn kernel_path_beats_user_path() {
    use numa_migrate::experiments::fig5::{measure, NtVariant};
    let kernel = measure(1024, NtVariant::Kernel).makespan.ns();
    let user = measure(1024, NtVariant::User).makespan.ns();
    let gain = user as f64 / kernel as f64;
    assert!(
        (1.15..1.6).contains(&gain),
        "kernel NT should win by ~30 %, got {gain:.2}x"
    );
}

/// Next-touch on a file mapping is refused without the extension and
/// accepted with it (paper §6 future work).
#[test]
fn shared_mapping_support_is_gated() {
    use numa_migrate::vm::{MemPolicy, Protection, VmaKind};
    for (shared_enabled, expect_ok) in [(false, false), (true, true)] {
        let mut m = NumaSystem::new()
            .kernel(KernelConfig {
                next_touch_shared: shared_enabled,
                ..KernelConfig::default()
            })
            .build();
        let addr = m
            .space
            .mmap(
                4 * PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::File,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        let range = PageRange::new(addr.vpn(), addr.vpn() + 4);
        let r =
            m.kernel
                .madvise_next_touch(&mut m.space, &mut m.tlb, SimTime::ZERO, CoreId(0), range);
        assert_eq!(r.is_ok(), expect_ok, "shared={shared_enabled}");
    }
}

/// Determinism across identical runs: bit-equal makespans and counters.
#[test]
fn next_touch_runs_are_deterministic() {
    let run_once = || {
        let mut m = NumaSystem::new().build();
        let buf = Buffer::alloc(&mut m, 64 * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let chunks = buf.split_pages(4);
        let specs: Vec<ThreadSpec> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut ops = Vec::new();
                if i == 0 {
                    ops.push(Op::MadviseNextTouch {
                        range: buf.page_range(),
                    });
                }
                ops.push(Op::Barrier(0));
                ops.push(Op::write(c.addr, c.len, MemAccessKind::Stream));
                ThreadSpec::scripted(m.topology().cores_of_node(NodeId(1))[i], ops)
            })
            .collect();
        let r = m.run(specs, &[4]);
        (r.makespan, m.kernel.counters.clone())
    };
    let (t1, c1) = run_once();
    let (t2, c2) = run_once();
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
}
