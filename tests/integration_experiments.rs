//! Shape assertions for every paper artifact, at reduced scale — the
//! executable form of EXPERIMENTS.md. Each test states the paper claim it
//! checks.

use numa_migrate::experiments::{ablations, blas1, fig4, fig5, fig6, fig7, fig8, table1};
use numa_migrate::stats::CostComponent;

/// Fig. 4: "our improvement of the move_pages system call behaves as
/// expected. When thousands of pages are manipulated at once, the
/// throughput remains near 600 MB/s while the original implementation
/// drops dramatically"; migrate_pages reaches ~780 MB/s; memcpy is far
/// above all of them.
#[test]
fn figure4_claims() {
    let rows = fig4::run(&[512, 8192]);
    let large = &rows[1];
    assert!((500.0..700.0).contains(&large.move_pages_mbps));
    assert!((650.0..860.0).contains(&large.migrate_pages_mbps));
    assert!(large.memcpy_mbps >= 1700.0);
    assert!(large.move_pages_nopatch_mbps < large.move_pages_mbps / 3.0);
    // Buffer-size independence of the patched path.
    let flat = large.move_pages_mbps / rows[0].move_pages_mbps;
    assert!((0.9..1.3).contains(&flat), "flatness {flat}");
}

/// Fig. 5: "our kernel-based Next-touch implementation achieves 800 MB/s
/// even for very small buffers" while the user-space strategy "basically
/// maps the move_pages performance".
#[test]
fn figure5_claims() {
    let rows = fig5::run(&[16, 1024]);
    let small = &rows[0];
    let large = &rows[1];
    assert!(
        small.kernel_mbps > 500.0,
        "kernel NT small {}",
        small.kernel_mbps
    );
    assert!(small.user_mbps < small.kernel_mbps / 2.0);
    let track = (large.user_mbps / 577.0 - 1.0).abs();
    assert!(
        track < 0.15,
        "user NT must track move_pages: {}",
        large.user_mbps
    );
}

/// Fig. 6: copy dominates both breakdowns; kernel control ≈ 20 %, user
/// control ≈ 38 %.
#[test]
fn figure6_claims() {
    let user = &fig6::run_user(&[1024])[0];
    let kernel = &fig6::run_kernel(&[1024])[0];
    let user_ctl = user.percent(CostComponent::MovePagesControl)
        + user.percent(CostComponent::LockWait)
        + user.percent(CostComponent::TlbFlush);
    let kernel_ctl =
        kernel.percent(CostComponent::FaultControl) + kernel.percent(CostComponent::LockWait);
    assert!((28.0..48.0).contains(&user_ctl), "user control {user_ctl}");
    assert!(
        (12.0..28.0).contains(&kernel_ctl),
        "kernel control {kernel_ctl}"
    );
    assert!(kernel.percent(CostComponent::FaultCopy) > 65.0);
}

/// Fig. 7: "parallelizing the migration (either lazy or synchronous) does
/// not bring any improvement for buffers smaller than 1 MB"; large
/// buffers gain ~50-60 % with 4 threads; lazy reaches ~1.3 GB/s and
/// "remains much lower than a regular memory copy".
#[test]
fn figure7_claims() {
    let rows = fig7::run(&[64, 16384], 4);
    let small = &rows[0];
    let large = &rows[1];
    assert!(
        small.sync_mbps[3] < small.sync_mbps[0] * 1.25,
        "small sync must not scale: {:?}",
        small.sync_mbps
    );
    let sync_gain = large.sync_mbps[3] / large.sync_mbps[0];
    let lazy_gain = large.lazy_mbps[3] / large.lazy_mbps[0];
    assert!((1.3..2.1).contains(&sync_gain), "sync gain {sync_gain}");
    assert!(lazy_gain >= 1.4, "lazy gain {lazy_gain}");
    assert!((1000.0..1600.0).contains(&large.lazy_mbps[3]));
    assert!(large.lazy_mbps[3] < 1800.0, "stays under memcpy bandwidth");
}

/// Table 1: negative improvement for sub-page-sharing blocks, positive
/// for 512-wide blocks on large matrices.
#[test]
fn table1_claims() {
    let small = table1::run_case(2048, 64);
    assert!(
        small.improvement_percent() < 0.0,
        "2k/64 must lose: {:+.1}%",
        small.improvement_percent()
    );
    let large = table1::run_case(4096, 512);
    assert!(
        large.improvement_percent() > 5.0,
        "4k/512 must win: {:+.1}%",
        large.improvement_percent()
    );
}

/// Fig. 8: "512 is the block size where data locality becomes critical
/// since memory migration (even with the user-space implementation)
/// becomes interesting".
#[test]
fn figure8_claims() {
    let small = fig8::run_case(256);
    let big = fig8::run_case(512);
    assert!(small.static_s <= small.kernel_nt_s * 1.02);
    assert!(big.kernel_nt_s < big.static_s);
    assert!(big.user_nt_s < big.static_s, "even user NT wins at 512");
    assert!(big.kernel_nt_s <= big.user_nt_s * 1.02);
}

/// §4.5: "the performance of BLAS1 operations never improves thanks to
/// memory migration".
#[test]
fn blas1_claims() {
    for row in blas1::run(&[1 << 13, 1 << 16]) {
        assert!(
            row.nt_improvement_percent() <= 0.5,
            "{} elements: {:+.1}%",
            row.elements,
            row.nt_improvement_percent()
        );
    }
}

/// The §6 extensions pay off in their target scenarios.
#[test]
fn extension_claims() {
    let (base, huge) = ablations::huge_page_migration();
    assert!(
        huge < base,
        "huge pages reduce fault count: {huge} vs {base}"
    );
    let (plain, replicated) = ablations::replication_benefit(64, 4);
    assert!(replicated < plain, "replication localizes reads");
}
