//! Quickstart: allocate a buffer on one NUMA node, mark it
//! migrate-on-next-touch, and watch it follow the first thread that
//! touches it — the core mechanism of the paper in ~50 lines.
//!
//! Run with: `cargo run --release -p numa-migrate --example quickstart`

use numa_migrate::prelude::*;

fn main() {
    // The paper's experimentation platform: four quad-core 1.9 GHz
    // Opterons, one memory node per socket, HyperTransport interconnect.
    let mut machine = Machine::opteron_4p();
    println!(
        "machine: {} nodes, {} cores, NUMA factor {:.2} (1 hop) / {:.2} (2 hops)",
        machine.topology().node_count(),
        machine.topology().core_count(),
        machine.topology().numa_factor(NodeId(0), NodeId(1)),
        machine.topology().numa_factor(NodeId(0), NodeId(3)),
    );

    // A 4 MB buffer, pre-populated on node 0.
    let buf = Buffer::alloc(&mut machine, 4 << 20);
    numa_migrate::rt::setup::populate_on_node(&mut machine, &buf, NodeId(0));
    println!(
        "before: residency per node = {:?}",
        numa_migrate::rt::setup::residency_histogram(&machine, &buf)
    );

    // One simulated thread on core 8 (node #2): mark the buffer
    // migrate-on-next-touch with the new madvise, then touch every page.
    let thread = ThreadSpec::scripted(
        CoreId(8),
        vec![
            Op::MadviseNextTouch {
                range: buf.page_range(),
            },
            Op::write(buf.addr, buf.len, MemAccessKind::Stream),
        ],
    );
    let result = machine.run(vec![thread], &[]);

    println!(
        "after:  residency per node = {:?}",
        numa_migrate::rt::setup::residency_histogram(&machine, &buf)
    );
    println!(
        "lazy migration of {} pages took {:.3} ms of virtual time \
         ({:.0} MB/s including the payload pass; the bare migration path \
         sustains ~730 MB/s, cf. paper Fig. 5: ~800 MB/s)",
        buf.pages(),
        result.makespan.ns() as f64 / 1e6,
        numa_migrate::stats::mb_per_s(buf.len, result.makespan.ns()),
    );
    println!(
        "kernel counters: {} pages marked, {} next-touch faults, {} pages migrated",
        machine.kernel.counters.get(Counter::PagesMarkedNextTouch),
        machine.kernel.counters.get(Counter::NextTouchFaults),
        machine.kernel.counters.get(Counter::PagesMovedFault),
    );

    // Every page is now on the toucher's node.
    assert_eq!(machine.page_node(buf.addr), Some(NodeId(2)));
}
