//! The paper's motivating workload class (§2.2): "highly-dynamic
//! applications such as adaptive mesh refinement have their thread/data
//! affinities actually varying during the execution". Patches refine
//! (gain weight) over time; a dynamic schedule rebalances them across
//! threads; the next-touch policy lets each patch's data chase whichever
//! thread currently owns it.
//!
//! Run with:
//! `cargo run --release -p numa-migrate --example adaptive_mesh`

use numa_migrate::apps::amr::{run_amr, AmrConfig};
use numa_migrate::prelude::*;

fn main() {
    println!("AMR-style dynamic stencil: 64 patches x 1 MB, 8 phases, 16 threads\n");

    let mut results = Vec::new();
    for strategy in [
        MigrationStrategy::Static,
        MigrationStrategy::KernelNextTouch,
    ] {
        let mut machine = Machine::opteron_4p();
        let cfg = AmrConfig::demo(strategy);
        let (r, weights) = run_amr(&mut machine, &cfg);
        let refined = weights.iter().filter(|w| **w > 1).count();
        println!(
            "{:<10}  time {:>8.3} ms   {} patches refined   remote accesses {:>7}",
            strategy.label(),
            r.makespan.ns() as f64 / 1e6,
            refined,
            r.stats.counters.get(Counter::RemoteAccesses),
        );
        results.push(r.makespan);
    }

    let improvement = (results[0].ns() as f64 / results[1].ns() as f64 - 1.0) * 100.0;
    println!(
        "\nnext-touch improvement: {improvement:+.1} % — the policy keeps data local\n\
         without the scheduler ever knowing which thread owns which patch\n\
         (paper §3.4: \"the thread scheduler does not have to know which\n\
         buffers are attached to which thread\")"
    );
    assert!(
        improvement > 0.0,
        "next-touch must win on the dynamic workload"
    );
}
