//! The scenario that started it all: the industrial PDE solver of the
//! paper's reference [8] (Löf & Holmgren), where the data is placed by an
//! assembly phase under one domain decomposition and then solved under a
//! different one — exactly what *affinity-on-next-touch* was invented for.
//!
//! Run with: `cargo run --release -p numa-migrate --example pde_solver`

use numa_migrate::apps::matrix::DataMode;
use numa_migrate::apps::pde::{initial_grid, jacobi_reference, run_pde, PdeConfig};
use numa_migrate::prelude::*;

fn main() {
    // Validated small run first: the parallel solve must equal the
    // sequential reference bit for bit (Jacobi reads only the old grid).
    let mut m = Machine::opteron_4p();
    let small = PdeConfig::small();
    let r = run_pde(&mut m, &small);
    let got = r.grid.expect("real mode");
    let want = jacobi_reference(
        &initial_grid(small.n as usize),
        small.n as usize,
        small.sweeps,
    );
    assert_eq!(got, want, "parallel Jacobi must match the reference");
    println!(
        "validated: {}x{} grid, {} sweeps, parallel == sequential reference\n",
        small.n, small.n, small.sweeps
    );

    // Timing comparison at scale: assembly places strips per assembler;
    // the solver's partitioning is rotated half-way around the team.
    println!("2048x2048 grid, 8 sweeps, ownership rotated between phases:\n");
    for strategy in [
        MigrationStrategy::Static,
        MigrationStrategy::KernelNextTouch,
    ] {
        let mut m = Machine::opteron_4p();
        let cfg = PdeConfig {
            mode: DataMode::Phantom,
            ..PdeConfig::timing(2048, strategy)
        };
        let r = run_pde(&mut m, &cfg);
        println!(
            "{:<10}  solve time {:>9.3} ms   remote accesses {:>7}   pages migrated {:>6}",
            strategy.label(),
            r.run.makespan.ns() as f64 / 1e6,
            r.run.stats.counters.get(Counter::RemoteAccesses),
            m.kernel.counters.get(Counter::PagesMovedFault),
        );
    }
    println!(
        "\nWith the next-touch hook between assembly and solve, each strip\n\
         chases its new owner on first touch — no scheduler bookkeeping, no\n\
         synchronous redistribution (paper \u{00a7}3.4)."
    );
}
