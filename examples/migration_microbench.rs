//! A guided tour of the migration primitives and their costs — the
//! paper's §4.2–§4.4 microbenchmarks in one program: synchronous
//! `move_pages` (patched vs quadratic), `migrate_pages`, both next-touch
//! implementations, and multi-threaded lazy migration.
//!
//! Run with:
//! `cargo run --release -p numa-migrate --example migration_microbench`

use numa_migrate::experiments::{fig4, fig5, fig7};

fn main() {
    let pages = 2048u64; // 8 MB
    println!("== synchronous migration of {pages} pages (8 MB), node #0 -> #1 ==\n");
    let rows = fig4::run(&[pages]);
    let r = &rows[0];
    println!("user-space memcpy            {:>8.1} MB/s", r.memcpy_mbps);
    println!(
        "migrate_pages (whole space)  {:>8.1} MB/s",
        r.migrate_pages_mbps
    );
    println!(
        "move_pages (patched)         {:>8.1} MB/s",
        r.move_pages_mbps
    );
    println!(
        "move_pages (quadratic)       {:>8.1} MB/s",
        r.move_pages_nopatch_mbps
    );
    println!(
        "\nthe paper's diagnosis (§3.1): the un-patched kernel scanned the whole\n\
         destination-node array once per page — O(n^2) — which this library\n\
         implements both ways (KernelConfig::patched_move_pages).\n"
    );

    println!("== next-touch migration of the same buffer ==\n");
    let rows = fig5::run(&[pages]);
    let r = &rows[0];
    println!(
        "user-space (mprotect+SIGSEGV+move_pages)  {:>8.1} MB/s",
        r.user_mbps
    );
    println!(
        "kernel (madvise + fault-path migration)   {:>8.1} MB/s",
        r.kernel_mbps
    );
    println!(
        "\nthe kernel path wins ~30 % (paper §4.3): no signal round-trip, no\n\
         second syscall pair, and only a local TLB invalidation per fault.\n"
    );

    println!("== lazy migration with 1-4 threads on the destination node ==\n");
    let rows = fig7::run(&[16384], 4);
    let r = &rows[0];
    for t in 0..4 {
        println!(
            "{} thread(s): sync {:>7.1} MB/s   lazy {:>7.1} MB/s",
            t + 1,
            r.sync_mbps[t],
            r.lazy_mbps[t]
        );
    }
    println!(
        "\nlazy migration tops out near 1.3 GB/s (paper Fig. 7) — every page\n\
         still takes a fault and the page-table lock, which is also why\n\
         parallel migration cannot approach raw memcpy bandwidth."
    );
}
