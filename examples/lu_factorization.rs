//! The paper's headline application (§4.5, Table 1): a threaded blocked
//! LU factorization with 16 OpenMP threads, comparing static interleaved
//! allocation against the kernel next-touch policy — with *real*
//! numerics, validated against a reference factorization.
//!
//! Run with:
//! `cargo run --release -p numa-migrate --example lu_factorization`

use numa_migrate::apps::lu::{run_lu, LuConfig};
use numa_migrate::apps::matrix::DataMode;
use numa_migrate::prelude::*;

fn main() {
    // Real-math configuration: small enough to validate numerically.
    let n = 256;
    let bs = 64;
    println!("LU factorization, {n}x{n} doubles, {bs}x{bs} blocks, 16 threads\n");

    for strategy in [
        MigrationStrategy::Static,
        MigrationStrategy::KernelNextTouch,
        MigrationStrategy::UserNextTouch,
    ] {
        let mut machine = Machine::opteron_4p();
        let cfg = LuConfig {
            n,
            bs,
            threads: 16,
            strategy,
            schedule: Schedule::Dynamic(1),
            mode: DataMode::Real,
            seed: 2009,
        };
        let r = run_lu(&mut machine, &cfg);
        let residual = r.residual.expect("real mode validates");
        assert!(
            residual < 1e-9,
            "{}: factorization numerically wrong (residual {residual})",
            strategy.label()
        );
        println!(
            "{:<10}  time {:>9.3} ms   residual {:.2e}   NT faults {:>6}   pages migrated {:>6}",
            strategy.label(),
            r.time.ns() as f64 / 1e6,
            residual,
            r.kernel_counters.get(Counter::NextTouchFaults),
            r.kernel_counters.get(Counter::PagesMovedFault)
                + r.kernel_counters.get(Counter::PagesMovedSyscall),
        );
    }

    println!(
        "\nAt this block size a 4 kB page holds column segments of {} adjacent\n\
         blocks, so next-touch migrations drag neighbours along (paper §4.5) —\n\
         run `cargo run --release -p numa-bench --bin table1` for the full sweep\n\
         where blocks of 512x512 flip the comparison.",
        PAGE_SIZE / (bs * 8)
    );
}
